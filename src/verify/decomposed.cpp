#include "verify/decomposed.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bv/analysis.hpp"
#include "bv/printer.hpp"
#include "interp/interp.hpp"

namespace vsd::verify {

using bv::ExprRef;
using symbex::ElementSummary;
using symbex::SegAction;
using symbex::Segment;
using symbex::SymPacket;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Proven: return "proven";
    case Verdict::Violated: return "violated";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

namespace {

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

// Runs a packet through the pipeline with scratch private state, returning
// the total executed instruction count without touching the live elements.
uint64_t replay_instruction_count(const pipeline::Pipeline& pl,
                                  const net::Packet& input) {
  net::Packet pkt = input;
  size_t cur = 0;
  uint64_t total = 0;
  for (;;) {
    const ir::Program& prog = pl.element(cur).program();
    interp::KvState scratch(prog.kv_tables.size());
    const interp::ExecResult r = interp::run(prog, pkt, scratch);
    total += r.instr_count;
    if (r.action != interp::Action::Emit) break;
    const auto d = pl.downstream(cur, r.port);
    if (!d) break;
    cur = *d;
  }
  return total;
}

}  // namespace

class DecomposedVerifier::Impl {
 public:
  explicit Impl(DecomposedConfig config) : cfg(config) {
    solver.set_max_conflicts(cfg.max_solver_conflicts);
  }

  DecomposedConfig cfg;
  solver::Solver solver;
  symbex::SummaryCache cache_summarize;
  symbex::SummaryCache cache_unroll;
  VerifyStats stats;  // accumulated per verification call (reset each call)

  // ---------------------------------------------------------------------
  // Step 1: element summaries (cached; loop-suspect fallback to unrolling)
  // ---------------------------------------------------------------------

  // How much loop-summary over-approximation a property can tolerate.
  enum class Precision {
    AcceptBounds,     // instruction bounds: summarized counts are fine
    ExactDropsTraps,  // reachability: Drop/Trap decisions must not depend
                      // on havocked loop outputs
    ExactAll,         // path enumeration: no summarized loops anywhere, so
                      // the composed constraints partition the input space
  };

  const ElementSummary& summary_for(const ir::Program& prog, size_t len,
                                    Precision precision) {
    if (cfg.loop_mode == symbex::LoopMode::Unroll) {
      return get_summary(cache_unroll, symbex::LoopMode::Unroll, prog, len);
    }
    const ElementSummary& s =
        get_summary(cache_summarize, symbex::LoopMode::Summarize, prog, len);
    // Any remaining trap suspect in a summarized element gets the exact
    // (unrolled) treatment before we conclude anything — regardless of
    // property, because trap constraints may be loop-over-approximated.
    const bool has_trap = std::any_of(
        s.segments.begin(), s.segments.end(),
        [](const Segment& g) { return g.action == SegAction::Trap; });
    const bool has_lossy_drop = std::any_of(
        s.segments.begin(), s.segments.end(), [](const Segment& g) {
          return g.action == SegAction::Drop && g.count_is_bound;
        });
    const bool has_any_bound = std::any_of(
        s.segments.begin(), s.segments.end(),
        [](const Segment& g) { return g.count_is_bound; });
    const bool need_unroll =
        has_trap ||
        (precision == Precision::ExactDropsTraps && has_lossy_drop) ||
        (precision == Precision::ExactAll && has_any_bound);
    if (cfg.unroll_fallback && need_unroll) {
      return get_summary(cache_unroll, symbex::LoopMode::Unroll, prog, len);
    }
    return s;
  }

  const ElementSummary& get_summary(symbex::SummaryCache& cache,
                                    symbex::LoopMode mode,
                                    const ir::Program& prog, size_t len) {
    const size_t misses_before = cache.misses();
    symbex::ExecOptions eo;
    eo.loop_mode = mode;
    // Summarize mode relies on folding + intervals (cheap, and the loop
    // summarizer handles precision); exact unrolling needs solver pruning
    // at forks or infeasible loop-path combinations multiply unchecked.
    eo.fork_check = mode == symbex::LoopMode::Unroll
                        ? symbex::ForkCheck::Solver
                        : symbex::ForkCheck::FoldOnly;
    eo.solver = &solver;
    symbex::Executor exec(eo);
    const ElementSummary& s = cache.get(prog, len, exec);
    if (cache.misses() != misses_before) {
      ++stats.elements_summarized;
      stats.segments_total += s.segments.size();
      stats.instructions_interpreted += s.stats.instructions_interpreted;
      stats.forks += s.stats.forks;
    } else {
      ++stats.summary_cache_hits;
    }
    return s;
  }

  // ---------------------------------------------------------------------
  // Step 2: composition by substitution
  // ---------------------------------------------------------------------

  // A KV read accumulated along a composed path, remembering which element
  // instance performed it and at what packet length that element was
  // summarized (the history constraint must use the same summary).
  struct PathKvRead {
    size_t elem = 0;
    size_t len = 0;
    symbex::KvReadRecord rec;
  };

  struct ComposeState {
    std::vector<ExprRef> bytes;
    std::array<ExprRef, net::kMetaSlots> meta;
    ExprRef constraint = bv::mk_bool(true);
    uint64_t count = 0;
    bool count_is_bound = false;
    std::vector<PathKvRead> kv_reads;  // renamed per instantiation
    std::vector<size_t> elem_trace;    // pipeline element indices
  };

  struct Instantiated {
    ExprRef constraint;  // composed (entry-rooted) constraint
    std::vector<ExprRef> out_bytes;
    std::array<ExprRef, net::kMetaSlots> out_meta;
    std::vector<symbex::KvReadRecord> kv_reads;
  };

  // Variables of a segment that are not the element's declared inputs:
  // KV-read symbols, havoc symbols, table-model symbols. They must be
  // renamed per pipeline instantiation (two instances of the same element
  // type have distinct private state).
  const std::vector<ExprRef>& aux_vars(const ElementSummary& sum,
                                       const Segment& g) {
    auto it = aux_cache_.find(&g);
    if (it != aux_cache_.end()) return it->second;
    std::unordered_set<uint64_t> inputs;
    for (const ExprRef& v : sum.entry.input_byte_vars()) {
      inputs.insert(v->var_id());
    }
    for (const ExprRef& v : sum.entry.input_meta_vars()) {
      inputs.insert(v->var_id());
    }
    std::unordered_set<uint64_t> seen;
    std::vector<ExprRef> aux;
    const auto scan = [&](const ExprRef& e) {
      if (!e) return;
      for (const ExprRef& v : bv::free_variables(e)) {
        if (inputs.count(v->var_id()) == 0 && seen.insert(v->var_id()).second) {
          aux.push_back(v);
        }
      }
    };
    scan(g.constraint);
    for (const ExprRef& b : g.exit_packet.bytes()) scan(b);
    for (const ExprRef& m : g.exit_packet.meta()) scan(m);
    for (const auto& r : g.kv_reads) {
      scan(r.key);
      scan(r.value);
    }
    return aux_cache_.emplace(&g, std::move(aux)).first->second;
  }

  // Rebases segment `g` of `sum` onto the given element-input expressions.
  // Returns nullopt when the stitched constraint folds to false.
  std::optional<Instantiated> instantiate(const ElementSummary& sum,
                                          const Segment& g,
                                          const ComposeState& st,
                                          bool need_outputs) {
    bv::Substitution sub;
    const auto& in_vars = sum.entry.input_byte_vars();
    for (size_t i = 0; i < in_vars.size() && i < st.bytes.size(); ++i) {
      sub.emplace(in_vars[i]->var_id(), st.bytes[i]);
    }
    const auto& meta_vars = sum.entry.input_meta_vars();
    for (size_t i = 0; i < meta_vars.size(); ++i) {
      sub.emplace(meta_vars[i]->var_id(), st.meta[i]);
    }
    for (const ExprRef& a : aux_vars(sum, g)) {
      sub.emplace(a->var_id(), bv::mk_var(a->name(), a->width()));
    }
    Instantiated out;
    const ExprRef c = bv::substitute(g.constraint, sub);
    out.constraint = bv::mk_land(st.constraint, c);
    if (out.constraint->is_false()) return std::nullopt;
    for (const auto& r : g.kv_reads) {
      out.kv_reads.push_back(symbex::KvReadRecord{
          r.table, bv::substitute(r.key, sub), bv::substitute(r.value, sub)});
    }
    if (need_outputs) {
      out.out_bytes.reserve(g.exit_packet.size());
      for (const ExprRef& b : g.exit_packet.bytes()) {
        out.out_bytes.push_back(bv::substitute(b, sub));
      }
      for (size_t i = 0; i < net::kMetaSlots; ++i) {
        out.out_meta[i] = g.exit_packet.meta(i)
                              ? bv::substitute(g.exit_packet.meta(i), sub)
                              : bv::mk_const(0, 32);
      }
    }
    return out;
  }

  // Generic DAG walk. on_terminal(state, element_index, segment) is invoked
  // for every composed terminal (Drop, Trap, or Emit leaving the pipeline).
  // `should_visit` prunes subtrees (e.g. elements that cannot reach a
  // suspect). Returns false if the path budget was exhausted.
  template <typename TerminalFn, typename VisitFn>
  bool walk(const pipeline::Pipeline& pl, size_t elem, ComposeState st,
            const TerminalFn& on_terminal, const VisitFn& should_visit,
            Precision precision) {
    if (!should_visit(elem)) return true;
    const ElementSummary& sum = summary_for(pl.element(elem).program(),
                                            st.bytes.size(), precision);
    if (sum.truncated) {
      truncated_ = true;
      return false;
    }
    for (const Segment& g : sum.segments) {
      if (budget_exhausted_) return false;
      const bool is_emit = g.action == SegAction::Emit;
      const std::optional<size_t> down =
          is_emit ? pl.downstream(elem, g.port) : std::nullopt;
      auto inst = instantiate(sum, g, st, is_emit && down.has_value());
      if (!inst) {
        // The stitched constraint folded to false. For a suspect (trap)
        // segment this IS the Step-2 elimination — the paper's p1 case,
        // where (in < 0) ∧ (0 < 0) collapses syntactically.
        if (g.action == SegAction::Trap) ++stats.suspects_eliminated;
        continue;
      }
      ComposeState next;
      next.constraint = inst->constraint;
      next.count = st.count + g.instr_count;
      next.count_is_bound = st.count_is_bound || g.count_is_bound;
      next.kv_reads = st.kv_reads;
      for (const auto& r : inst->kv_reads) {
        next.kv_reads.push_back(PathKvRead{elem, st.bytes.size(), r});
      }
      next.elem_trace = st.elem_trace;
      next.elem_trace.push_back(elem);
      if (is_emit && down.has_value()) {
        next.bytes = std::move(inst->out_bytes);
        next.meta = inst->out_meta;
        if (!walk(pl, *down, std::move(next), on_terminal, should_visit,
                  precision)) {
          return false;
        }
        continue;
      }
      ++stats.composed_paths_checked;
      if (stats.composed_paths_checked > cfg.max_composed_paths) {
        budget_exhausted_ = true;
        return false;
      }
      on_terminal(next, elem, g);
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // Stateful refinement: the bad-value analysis for private state
  // ---------------------------------------------------------------------

  // History constraint for one renamed KV read: the value is the table's
  // default (0) or a value some feasible execution of this element could
  // have written (writer inputs fully fresh — an arbitrary earlier packet).
  ExprRef kv_history_constraint(const pipeline::Pipeline& pl,
                                const PathKvRead& pr) {
    const symbex::KvReadRecord& read = pr.rec;
    const ElementSummary& sum =
        summary_for(pl.element(pr.elem).program(), pr.len,
                    Precision::AcceptBounds);
    ExprRef any = bv::mk_eq(read.value,
                            bv::mk_const(0, read.value->width()));
    for (const Segment& g : sum.segments) {
      for (const auto& wr : g.kv_writes) {
        if (wr.table != read.table) continue;
        // Fresh-rename the writer's entire variable set.
        bv::Substitution sub;
        std::unordered_set<uint64_t> seen;
        const auto rename_all = [&](const ExprRef& e) {
          for (const ExprRef& v : bv::free_variables(e)) {
            if (seen.insert(v->var_id()).second) {
              sub.emplace(v->var_id(), bv::mk_var("wrt." + v->name(),
                                                  v->width()));
            }
          }
        };
        rename_all(g.constraint);
        rename_all(wr.value);
        const ExprRef writer_feasible = bv::substitute(g.constraint, sub);
        const ExprRef written = bv::substitute(wr.value, sub);
        any = bv::mk_lor(
            any, bv::mk_land(writer_feasible,
                             bv::mk_eq(read.value, written)));
      }
    }
    return any;
  }

  // Decides a suspect's stitched constraint, applying the KV history
  // refinement when private-state reads are involved. On Sat, fills the
  // model and state note.
  solver::Result decide_suspect(const pipeline::Pipeline& pl,
                                const ComposeState& st,
                                bv::Assignment* model_out,
                                std::string* state_note) {
    ++stats.solver_queries;
    solver::CheckResult r = solver.check(st.constraint);
    if (r.result != solver::Result::Sat || st.kv_reads.empty()) {
      if (r.result == solver::Result::Sat && model_out != nullptr) {
        *model_out = std::move(r.model);
      }
      return r.result;
    }
    // The violation may hinge on values read from private state; ask
    // whether the required values are reachable through any write history.
    ExprRef refined = st.constraint;
    for (const PathKvRead& pr : st.kv_reads) {
      refined = bv::mk_land(refined, kv_history_constraint(pl, pr));
    }
    ++stats.solver_queries;
    solver::CheckResult r2 = solver.check(refined);
    if (r2.result == solver::Result::Sat) {
      if (model_out != nullptr) *model_out = std::move(r2.model);
      if (state_note != nullptr) {
        *state_note =
            "requires private state reachable via a prior packet sequence "
            "(KV bad-value analysis: a feasible write history produces the "
            "required value)";
      }
    }
    return r2.result;
  }

  // ---------------------------------------------------------------------
  // Helpers shared by the public property drivers
  // ---------------------------------------------------------------------

  // Elements from which any suspect-bearing element is reachable.
  std::vector<bool> reachability_filter(
      const pipeline::Pipeline& pl, const std::vector<bool>& is_target) {
    const size_t n = pl.size();
    std::vector<bool> can_reach(is_target);
    // Fixed-point over the DAG (small graphs; no need for topo order).
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t e = 0; e < n; ++e) {
        if (can_reach[e]) continue;
        for (uint32_t p = 0; p < pl.element(e).num_output_ports(); ++p) {
          const auto d = pl.downstream(e, p);
          if (d && can_reach[*d]) {
            can_reach[e] = true;
            changed = true;
            break;
          }
        }
      }
    }
    return can_reach;
  }

  Counterexample make_counterexample(const pipeline::Pipeline& pl,
                                     const SymPacket& entry,
                                     const ComposeState& st,
                                     const bv::Assignment& model,
                                     ir::TrapKind trap,
                                     std::string note) {
    Counterexample ce;
    ce.packet = entry.to_concrete(model);
    for (const size_t e : st.elem_trace) {
      ce.element_path.push_back(pl.element(e).name());
    }
    ce.trap = trap;
    ce.state_note = std::move(note);
    return ce;
  }

  void begin_call() {
    stats = {};
    truncated_ = false;
    budget_exhausted_ = false;
    solver.reset_stats();
  }

  void snapshot_solver_stats() {
    stats.solver_queries += solver.stats().queries;
  }

  std::unordered_map<const Segment*, std::vector<ExprRef>> aux_cache_;
  bool truncated_ = false;
  bool budget_exhausted_ = false;
};

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

DecomposedVerifier::DecomposedVerifier(DecomposedConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

DecomposedVerifier::~DecomposedVerifier() = default;

symbex::SummaryCache& DecomposedVerifier::cache() {
  return impl_->cache_summarize;
}
solver::Solver& DecomposedVerifier::solver() { return impl_->solver; }
const DecomposedConfig& DecomposedVerifier::config() const {
  return impl_->cfg;
}

CrashFreedomReport DecomposedVerifier::verify_crash_freedom(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  Timer timer;
  im.begin_call();
  CrashFreedomReport report;

  // Step 1: summarize every element; find suspects (feasible trap segments
  // under unconstrained element input).
  std::vector<bool> has_suspect(pl.size(), false);
  bool any_truncated = false;
  for (size_t e = 0; e < pl.size(); ++e) {
    const ElementSummary& sum =
        im.summary_for(pl.element(e).program(), im.cfg.packet_len,
                       Impl::Precision::AcceptBounds);
    if (sum.truncated) any_truncated = true;
    for (const Segment& g : sum.segments) {
      if (g.action != SegAction::Trap) continue;
      ++im.stats.suspects_found;
      if (!g.constraint->is_false()) has_suspect[e] = true;
    }
  }
  if (any_truncated) {
    report.verdict = Verdict::Unknown;
    report.stats = im.stats;
    report.seconds = timer.seconds();
    return report;
  }
  const bool none = std::none_of(has_suspect.begin(), has_suspect.end(),
                                 [](bool b) { return b; });
  if (none) {
    // No element can trap for any input: the pipeline provably never
    // crashes, no composition needed.
    report.verdict = Verdict::Proven;
    report.stats = im.stats;
    report.seconds = timer.seconds();
    return report;
  }

  // Step 2: compose paths that can reach a suspect element and decide each
  // suspect trap with the full stitched constraint.
  const std::vector<bool> filter = im.reachability_filter(pl, has_suspect);
  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root;
  root.bytes = entry.bytes();
  for (size_t i = 0; i < net::kMetaSlots; ++i) root.meta[i] = entry.meta(i);

  bool violated = false;
  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        if (g.action != SegAction::Trap) return;
        bv::Assignment model;
        std::string note;
        const solver::Result r = im.decide_suspect(pl, st, &model, &note);
        if (r == solver::Result::Unsat) {
          ++im.stats.suspects_eliminated;
          return;
        }
        if (r == solver::Result::Unknown) {
          im.truncated_ = true;
          return;
        }
        violated = true;
        report.counterexamples.push_back(im.make_counterexample(
            pl, entry, st, model, g.trap, std::move(note)));
      },
      [&](size_t e) { return filter[e]; },
      Impl::Precision::AcceptBounds);

  if (violated) {
    report.verdict = Verdict::Violated;
  } else if (!complete || im.truncated_) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
  }
  report.stats = im.stats;
  report.seconds = timer.seconds();
  return report;
}

InstructionBoundReport DecomposedVerifier::verify_instruction_bound(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  Timer timer;
  im.begin_call();
  InstructionBoundReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root;
  root.bytes = entry.bytes();
  for (size_t i = 0; i < net::kMetaSlots; ++i) root.meta[i] = entry.meta(i);

  uint64_t best = 0;
  bool best_is_bound = false;
  bv::Assignment best_model;
  bool saw_unknown = false;

  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        // st already includes the terminal segment's count (walk adds it
        // before invoking the callback).
        (void)g;
        const uint64_t total = st.count;
        if (total <= best) return;  // cannot improve the max
        ++im.stats.solver_queries;
        const solver::CheckResult r = im.solver.check(st.constraint);
        if (r.result == solver::Result::Unsat) return;
        if (r.result == solver::Result::Unknown) {
          saw_unknown = true;
          return;
        }
        best = total;
        best_is_bound = st.count_is_bound || g.count_is_bound;
        best_model = r.model;
      },
      [](size_t) { return true; },
      Impl::Precision::AcceptBounds);

  report.max_instructions = best;
  report.bound_is_exact = !best_is_bound;
  if (!complete || im.truncated_ || saw_unknown) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
    net::Packet witness = entry.to_concrete(best_model);
    // Replay the witness concretely (scratch private state, the live
    // pipeline is untouched) to report the achieved count: equals the bound
    // when exact, a measured value under the bound otherwise.
    report.witness_instructions = replay_instruction_count(pl, witness);
    report.witness = std::move(witness);
  }
  report.stats = im.stats;
  report.seconds = timer.seconds();
  return report;
}

ComposedPaths DecomposedVerifier::enumerate_paths(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  im.begin_call();
  ComposedPaths out;
  out.entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root;
  root.bytes = out.entry.bytes();
  for (size_t i = 0; i < net::kMetaSlots; ++i) root.meta[i] = out.entry.meta(i);

  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        ComposedPath cp;
        cp.constraint = st.constraint;
        for (const size_t e : st.elem_trace) {
          cp.element_path.push_back(pl.element(e).name());
        }
        cp.action = g.action;
        cp.port = g.port;
        cp.trap = g.trap;
        cp.instr_count = st.count;
        cp.count_is_bound = st.count_is_bound;
        out.paths.push_back(std::move(cp));
      },
      [](size_t) { return true; }, Impl::Precision::ExactAll);
  out.complete = complete && !im.truncated_;
  return out;
}

ReachabilityReport DecomposedVerifier::verify_never_dropped(
    const pipeline::Pipeline& pl, const InputPredicate& predicate) {
  Impl& im = *impl_;
  Timer timer;
  im.begin_call();
  ReachabilityReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root;
  root.bytes = entry.bytes();
  for (size_t i = 0; i < net::kMetaSlots; ++i) root.meta[i] = entry.meta(i);
  root.constraint = predicate(entry);
  if (root.constraint->is_false()) {
    report.verdict = Verdict::Proven;  // vacuous: no packet matches
    report.seconds = timer.seconds();
    return report;
  }

  bool violated = false;
  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        // Both explicit drops and traps lose the packet.
        if (g.action == SegAction::Emit) return;
        ++im.stats.suspects_found;
        bv::Assignment model;
        std::string note;
        const solver::Result r = im.decide_suspect(pl, st, &model, &note);
        if (r == solver::Result::Unsat) {
          ++im.stats.suspects_eliminated;
          return;
        }
        if (r == solver::Result::Unknown) {
          im.truncated_ = true;
          return;
        }
        violated = true;
        report.counterexamples.push_back(im.make_counterexample(
            pl, entry, st, model,
            g.action == SegAction::Trap ? g.trap : ir::TrapKind::Unreachable,
            std::move(note)));
      },
      [](size_t) { return true; },
      Impl::Precision::ExactDropsTraps);

  if (violated) {
    report.verdict = Verdict::Violated;
  } else if (!complete || im.truncated_) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
  }
  report.stats = im.stats;
  report.seconds = timer.seconds();
  return report;
}

}  // namespace vsd::verify
