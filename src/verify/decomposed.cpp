#include "verify/decomposed.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "bv/analysis.hpp"
#include "bv/printer.hpp"
#include "cache/fingerprint.hpp"
#include "interp/interp.hpp"
#include "obs/trace.hpp"
#include "solver/pool.hpp"
#include "symbex/state_summary.hpp"
#include "verify/decision_cache.hpp"
#include "verify/parallel.hpp"

namespace vsd::verify {

using bv::ExprRef;
using symbex::ElementSummary;
using symbex::SegAction;
using symbex::Segment;
using symbex::SymPacket;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Proven: return "proven";
    case Verdict::Violated: return "violated";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

namespace {

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

// Replays a packet sequence with persistent scratch private state (the
// live pipeline is untouched); returns the total live entries across the
// counted elements' tables afterwards. Backs the public
// replay_sequence_occupancy and the bounded-state driver's certification.
uint64_t replay_sequence_occupancy_counted(const pipeline::Pipeline& pl,
                                           const std::vector<net::Packet>& seq,
                                           const std::vector<bool>& counted) {
  std::vector<interp::KvState> state;
  state.reserve(pl.size());
  for (size_t e = 0; e < pl.size(); ++e) {
    state.emplace_back(pl.element(e).program().kv_tables.size());
  }
  for (const net::Packet& input : seq) {
    net::Packet pkt = input;
    size_t cur = 0;
    for (;;) {
      // Element::execute picks the compiled engine when it is globally on;
      // the compiled path is bit-identical to the interpreter, so the
      // certified occupancy is engine-independent.
      const interp::ExecResult r = pl.element(cur).execute(pkt, state[cur]);
      if (r.action != interp::Action::Emit) break;
      const auto d = pl.downstream(cur, r.port);
      if (!d) break;
      cur = *d;
    }
  }
  uint64_t total = 0;
  for (size_t e = 0; e < pl.size(); ++e) {
    if (!counted[e]) continue;
    const size_t ntables = pl.element(e).program().kv_tables.size();
    for (size_t t = 0; t < ntables; ++t) {
      total += state[e].live_entry_count(static_cast<ir::TableId>(t));
    }
  }
  return total;
}

// Runs a packet through the pipeline with scratch private state, returning
// the total executed instruction count without touching the live elements.
uint64_t replay_instruction_count(const pipeline::Pipeline& pl,
                                  const net::Packet& input) {
  net::Packet pkt = input;
  size_t cur = 0;
  uint64_t total = 0;
  for (;;) {
    const pipeline::Element& el = pl.element(cur);
    interp::KvState scratch(el.program().kv_tables.size());
    const interp::ExecResult r = el.execute(pkt, scratch);
    total += r.instr_count;
    if (r.action != interp::Action::Emit) break;
    const auto d = pl.downstream(cur, r.port);
    if (!d) break;
    cur = *d;
  }
  return total;
}

}  // namespace

class DecomposedVerifier::Impl {
 public:
  explicit Impl(DecomposedConfig config)
      : cfg(config),
        jobs(resolve_jobs(config.jobs)),
        pool(jobs, config.max_solver_conflicts, config.incremental) {
    solver.set_max_conflicts(cfg.max_solver_conflicts);
    solver.set_incremental(cfg.incremental);
    apply_avoidance(solver);
    pool.set_rewrite(cfg.rewrite);
    pool.set_independence(cfg.independence);
    pool.set_cex_cache(cfg.cex_cache);
    pool.set_core_grouping(cfg.core_grouping);
    pool.set_clause_gc(cfg.clause_gc);
    if (jobs > 1) queue = std::make_unique<WorkQueue>(jobs);
  }

  void apply_avoidance(solver::Solver& sv) const {
    sv.set_rewrite(cfg.rewrite);
    sv.set_independence(cfg.independence);
    sv.set_cex_cache(cfg.cex_cache);
    sv.set_core_grouping(cfg.core_grouping);
    sv.set_clause_gc(cfg.clause_gc);
  }

  static size_t resolve_jobs(size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  DecomposedConfig cfg;
  size_t jobs;
  solver::Solver solver;     // the sequential engine's instance
  solver::SolverPool pool;   // one instance per worker (parallel engine)
  std::unique_ptr<WorkQueue> queue;  // only when jobs > 1
  // Step-1 summary caches: private per instance, unless the config hands
  // in a shared bundle (the serve daemon's warm state).
  SummaryCaches own_caches_;
  symbex::SharedSummaryCache& cache_summarize() {
    return cfg.shared_caches ? cfg.shared_caches->summarize
                             : own_caches_.summarize;
  }
  symbex::SharedSummaryCache& cache_unroll() {
    return cfg.shared_caches ? cfg.shared_caches->unroll : own_caches_.unroll;
  }
  VerifyStats stats;  // accumulated per verification call (reset each call)

  // ---------------------------------------------------------------------
  // Step 1: element summaries (cached; loop-suspect fallback to unrolling)
  // ---------------------------------------------------------------------

  // How much loop-summary over-approximation a property can tolerate.
  enum class Precision {
    AcceptBounds,     // instruction bounds: summarized counts are fine
    ExactDropsTraps,  // reachability: Drop/Trap decisions must not depend
                      // on havocked loop outputs
    ExactAll,         // path enumeration: no summarized loops anywhere, so
                      // the composed constraints partition the input space
  };

  // `sv`/`vstats` are the calling worker's solver instance and stats block;
  // the sequential engine passes the members, parallel workers their own.
  const ElementSummary& summary_for(const ir::Program& prog, size_t len,
                                    Precision precision, solver::Solver& sv,
                                    VerifyStats& vstats) {
    if (cfg.loop_mode == symbex::LoopMode::Unroll) {
      return get_summary(cache_unroll(), symbex::LoopMode::Unroll, prog, len,
                         sv, vstats);
    }
    const ElementSummary& s = get_summary(
        cache_summarize(), symbex::LoopMode::Summarize, prog, len, sv, vstats);
    // Any remaining trap suspect in a summarized element gets the exact
    // (unrolled) treatment before we conclude anything — regardless of
    // property, because trap constraints may be loop-over-approximated.
    const bool has_trap = std::any_of(
        s.segments.begin(), s.segments.end(),
        [](const Segment& g) { return g.action == SegAction::Trap; });
    const bool has_lossy_drop = std::any_of(
        s.segments.begin(), s.segments.end(), [](const Segment& g) {
          return g.action == SegAction::Drop && g.count_is_bound;
        });
    const bool has_any_bound = std::any_of(
        s.segments.begin(), s.segments.end(),
        [](const Segment& g) { return g.count_is_bound; });
    const bool need_unroll =
        has_trap ||
        (precision == Precision::ExactDropsTraps && has_lossy_drop) ||
        (precision == Precision::ExactAll && has_any_bound);
    if (cfg.unroll_fallback && need_unroll) {
      return get_summary(cache_unroll(), symbex::LoopMode::Unroll, prog, len,
                         sv, vstats);
    }
    return s;
  }

  const ElementSummary& get_summary(symbex::SharedSummaryCache& cache,
                                    symbex::LoopMode mode,
                                    const ir::Program& prog, size_t len,
                                    solver::Solver& sv, VerifyStats& vstats) {
    symbex::ExecOptions eo;
    eo.loop_mode = mode;
    // Summarize mode relies on folding + intervals (cheap, and the loop
    // summarizer handles precision); exact unrolling needs solver pruning
    // at forks or infeasible loop-path combinations multiply unchecked.
    eo.fork_check = mode == symbex::LoopMode::Unroll
                        ? symbex::ForkCheck::Solver
                        : symbex::ForkCheck::FoldOnly;
    eo.solver = &sv;
    symbex::Executor exec(eo);
    bool was_miss = false;
    obs::ScopedSpan sp(obs::Cat::Summarize, "summarize");
    const ElementSummary& s = cache.get(prog, len, exec, &was_miss);
    if (sp) {
      if (!was_miss) {
        sp.cancel();  // a cache hit is not summarization work
        obs::count("verify.summary_cache_hits");
      } else {
        sp.arg("element", prog.name);
        sp.arg("entry_len", std::to_string(len));
        sp.arg("mode", mode == symbex::LoopMode::Unroll ? "unroll"
                                                        : "summarize");
        obs::count("verify.elements_summarized");
      }
    }
    if (was_miss) {
      ++vstats.elements_summarized;
      vstats.segments_total += s.segments.size();
      vstats.instructions_interpreted += s.stats.instructions_interpreted;
      vstats.forks += s.stats.forks;
    } else {
      ++vstats.summary_cache_hits;
    }
    return s;
  }

  // ---------------------------------------------------------------------
  // Step 2: composition by substitution
  // ---------------------------------------------------------------------

  // A KV read accumulated along a composed path, remembering which element
  // instance performed it and at what packet length that element was
  // summarized (the history constraint must use the same summary).
  struct PathKvRead {
    size_t elem = 0;
    size_t len = 0;
    symbex::KvReadRecord rec;
  };

  struct ComposeState {
    std::vector<ExprRef> bytes;
    std::array<ExprRef, net::kMetaSlots> meta;
    ExprRef constraint = bv::mk_bool(true);
    uint64_t count = 0;
    bool count_is_bound = false;
    std::vector<PathKvRead> kv_reads;  // renamed per instantiation
    std::vector<size_t> elem_trace;    // pipeline element indices
  };

  struct Instantiated {
    ExprRef constraint;  // composed (entry-rooted) constraint
    std::vector<ExprRef> out_bytes;
    std::array<ExprRef, net::kMetaSlots> out_meta;
    std::vector<symbex::KvReadRecord> kv_reads;
    std::vector<symbex::KvWriteRecord> kv_writes;  // only when requested
  };

  // Variables of a segment that are not the element's declared inputs:
  // KV-read symbols, havoc symbols, table-model symbols. They must be
  // renamed per pipeline instantiation (two instances of the same element
  // type have distinct private state). Thread-safe: parallel workers hit
  // the same segments while walking disjoint subtrees.
  const std::vector<ExprRef>& aux_vars(const ElementSummary& sum,
                                       const Segment& g) {
    {
      std::lock_guard<std::mutex> lock(aux_mu_);
      auto it = aux_cache_.find(&g);
      if (it != aux_cache_.end()) return it->second;
    }
    std::unordered_set<uint64_t> inputs;
    for (const ExprRef& v : sum.entry.input_byte_vars()) {
      inputs.insert(v->var_id());
    }
    for (const ExprRef& v : sum.entry.input_meta_vars()) {
      inputs.insert(v->var_id());
    }
    std::unordered_set<uint64_t> seen;
    std::vector<ExprRef> aux;
    const auto scan = [&](const ExprRef& e) {
      if (!e) return;
      for (const ExprRef& v : bv::free_variables(e)) {
        if (inputs.count(v->var_id()) == 0 && seen.insert(v->var_id()).second) {
          aux.push_back(v);
        }
      }
    };
    scan(g.constraint);
    for (const ExprRef& b : g.exit_packet.bytes()) scan(b);
    for (const ExprRef& m : g.exit_packet.meta()) scan(m);
    for (const auto& r : g.kv_reads) {
      scan(r.key);
      scan(r.value);
    }
    std::lock_guard<std::mutex> lock(aux_mu_);
    return aux_cache_.emplace(&g, std::move(aux)).first->second;
  }

  // Rebases segment `g` of `sum` onto the given element-input expressions.
  // Returns nullopt when the stitched constraint folds to false.
  std::optional<Instantiated> instantiate(const ElementSummary& sum,
                                          const Segment& g,
                                          const ComposeState& st,
                                          bool need_outputs,
                                          bool need_writes = false) {
    bv::Substitution sub;
    const auto& in_vars = sum.entry.input_byte_vars();
    for (size_t i = 0; i < in_vars.size() && i < st.bytes.size(); ++i) {
      sub.emplace(in_vars[i]->var_id(), st.bytes[i]);
    }
    const auto& meta_vars = sum.entry.input_meta_vars();
    for (size_t i = 0; i < meta_vars.size(); ++i) {
      sub.emplace(meta_vars[i]->var_id(), st.meta[i]);
    }
    for (const ExprRef& a : aux_vars(sum, g)) {
      sub.emplace(a->var_id(), bv::mk_var(a->name(), a->width()));
    }
    Instantiated out;
    const ExprRef c = bv::substitute(g.constraint, sub);
    out.constraint = bv::mk_land(st.constraint, c);
    if (out.constraint->is_false()) return std::nullopt;
    for (const auto& r : g.kv_reads) {
      out.kv_reads.push_back(symbex::KvReadRecord{
          r.table, bv::substitute(r.key, sub), bv::substitute(r.value, sub)});
    }
    if (need_writes) {
      for (const auto& w : g.kv_writes) {
        out.kv_writes.push_back(symbex::KvWriteRecord{
            w.table, bv::substitute(w.key, sub),
            bv::substitute(w.value, sub)});
      }
    }
    if (need_outputs) {
      out.out_bytes.reserve(g.exit_packet.size());
      for (const ExprRef& b : g.exit_packet.bytes()) {
        out.out_bytes.push_back(bv::substitute(b, sub));
      }
      for (size_t i = 0; i < net::kMetaSlots; ++i) {
        out.out_meta[i] = g.exit_packet.meta(i)
                              ? bv::substitute(g.exit_packet.meta(i), sub)
                              : bv::mk_const(0, 32);
      }
    }
    return out;
  }

  // Expands one feasible segment onto the running compose state: stitches
  // the constraint, accumulates counts/KV reads/trace, and (for an Emit
  // continuing into `down`) installs the segment's output packet. Returns
  // nullopt when the stitched constraint folds to false — for a trap
  // segment that IS the Step-2 elimination, the paper's p1 case, where
  // (in < 0) ∧ (0 < 0) collapses syntactically. Shared by the sequential
  // and parallel walks so compose semantics cannot diverge between them.
  std::optional<ComposeState> expand_segment(const ElementSummary& sum,
                                             const Segment& g,
                                             const ComposeState& st,
                                             size_t elem,
                                             std::optional<size_t> down,
                                             VerifyStats& vstats) {
    const bool continues = g.action == SegAction::Emit && down.has_value();
    auto inst = instantiate(sum, g, st, continues);
    if (!inst) {
      if (g.action == SegAction::Trap) ++vstats.suspects_eliminated;
      return std::nullopt;
    }
    ComposeState next;
    next.constraint = inst->constraint;
    next.count = st.count + g.instr_count;
    next.count_is_bound = st.count_is_bound || g.count_is_bound;
    next.kv_reads = st.kv_reads;
    for (const auto& r : inst->kv_reads) {
      next.kv_reads.push_back(PathKvRead{elem, st.bytes.size(), r});
    }
    next.elem_trace = st.elem_trace;
    next.elem_trace.push_back(elem);
    if (continues) {
      next.bytes = std::move(inst->out_bytes);
      next.meta = inst->out_meta;
    }
    return next;
  }

  // Generic DAG walk (sequential engine). on_terminal(state, element_index,
  // segment) is invoked for every composed terminal (Drop, Trap, or Emit
  // leaving the pipeline). `should_visit` prunes subtrees (e.g. elements
  // that cannot reach a suspect). Returns false if the path budget was
  // exhausted.
  template <typename TerminalFn, typename VisitFn>
  bool walk(const pipeline::Pipeline& pl, size_t elem, ComposeState st,
            const TerminalFn& on_terminal, const VisitFn& should_visit,
            Precision precision) {
    if (!should_visit(elem)) return true;
    const ElementSummary& sum = summary_for(pl.element(elem).model_program(),
                                            st.bytes.size(), precision,
                                            solver, stats);
    if (sum.truncated) {
      truncated_ = true;
      return false;
    }
    for (const Segment& g : sum.segments) {
      if (budget_exhausted_) return false;
      const bool is_emit = g.action == SegAction::Emit;
      const std::optional<size_t> down =
          is_emit ? pl.downstream(elem, g.port) : std::nullopt;
      auto expanded = expand_segment(sum, g, st, elem, down, stats);
      if (!expanded) continue;
      ComposeState next = std::move(*expanded);
      if (is_emit && down.has_value()) {
        if (!walk(pl, *down, std::move(next), on_terminal, should_visit,
                  precision)) {
          return false;
        }
        continue;
      }
      ++stats.composed_paths_checked;
      if (stats.composed_paths_checked > cfg.max_composed_paths) {
        budget_exhausted_ = true;
        return false;
      }
      on_terminal(next, elem, g);
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // Parallel walk (jobs > 1): the same DAG exploration, but every feasible
  // Emit edge forks a work-queue task, and terminals are handed to the
  // callback on whichever worker reached them. Each terminal carries its
  // DFS address (the segment index chosen at every element), so callers
  // sort results into exactly the sequential emission order — reports are
  // byte-for-byte deterministic in verdicts, suspect sets, and path lists
  // regardless of job count.
  //
  // Caveat, shared with every parallel model checker that bounds work with
  // a global counter: if max_composed_paths is actually exhausted, WHICH
  // terminals won a budget slot depends on scheduling, so an exhausted run
  // may report Violated (with a genuine counterexample) on one run and
  // Unknown on another — both sound, neither a proof. Within the budget
  // (all tier-1 workloads are orders of magnitude below it) results are
  // fully deterministic.
  // ---------------------------------------------------------------------

  struct TerminalRecord {
    std::vector<uint32_t> order;  // DFS address: per-element segment index
    ComposeState st;
    size_t elem = 0;
    const Segment* seg = nullptr;
  };
  using MtTerminalFn = std::function<void(size_t worker, TerminalRecord&&)>;
  using MtVisitFn = std::function<bool(size_t elem)>;

  void begin_call(const pipeline::Pipeline& pl) {
    stats = {};
    begin_cache_context(pl);
    truncated_ = false;
    budget_exhausted_ = false;
    refine_cache_.clear();
    state_writes_memo_.clear();
    solver.reset_stats();
    // One live incremental context per solver per top-level call: reuse
    // within the call's query runs, bounded memory across a batch.
    solver.reset_context();
    // Route every solver's feasibility verdicts through the persistent
    // cache. This is where the big warm win lives: most of a cold run's
    // sat_solves are summarization-time fork checks (Executor is_unsat),
    // and those are pure expression satisfiability — context-free, so the
    // memo is sound across runs and across pipelines.
    solver.set_feasibility_memo(cfg.decision_cache);
    for (size_t w = 0; w < pool.size(); ++w) {
      pool.at(w).set_feasibility_memo(cfg.decision_cache);
    }
  }

  void begin_call_mt(const pipeline::Pipeline& pl) {
    begin_call(pl);
    mt_stats_.assign(jobs, VerifyStats{});
    mt_paths_checked_.store(0, std::memory_order_relaxed);
    mt_truncated_.store(false, std::memory_order_relaxed);
    mt_budget_exhausted_.store(false, std::memory_order_relaxed);
    pool.reset_stats();
    pool.reset_contexts();
  }

  // -------------------------------------------------------------------
  // Persistent cross-run decision cache (cfg.decision_cache)
  // -------------------------------------------------------------------
  //
  // Every key binds only what the answer actually depends on: the call
  // knobs (packet length, loop handling), the constraint/trace material
  // itself, and the CONTENT of the elements that material touches — never
  // the whole pipeline. That locality is the service's payoff: resubmit a
  // spec with one element edited and only decisions whose path crosses the
  // edit re-derive; every other path warm-hits. Domain tags keep the three
  // entry families (suspect decisions, feasibility speculations,
  // refinements) disjoint even for coincidentally identical material. The
  // avoidance flags, job count, and incremental mode are deliberately NOT
  // keyed: they are verdict-invariant by design, so any of those runs may
  // share entries.
  static constexpr uint64_t kFpSuspect = 0x5059ec7f1a7c15ull;
  static constexpr uint64_t kFpFeasible = 0xfea51b1e0a7c15ull;
  static constexpr uint64_t kFpRefine = 0x5ef19e0f2b7c15ull;

  uint64_t call_hi_ = 0, call_lo_ = 0;
  // Per-element content hash: the element's model program plus its port
  // wiring (downstream indices — the refine walk matches trace indices
  // through exactly this wiring). Recomputed per call; read-only while
  // workers run.
  std::vector<uint64_t> elem_fp_;

  void begin_cache_context(const pipeline::Pipeline& pl) {
    if (cfg.decision_cache == nullptr) return;
    cache::Fingerprint fp;
    fp.mix(cfg.packet_len);
    // Insurance only: constraints are hashed structurally, so loop-mode
    // differences already produce different keys; keying the mode keeps
    // even a diagnostic-name collision between modes from aliasing.
    fp.mix(static_cast<uint64_t>(cfg.loop_mode));
    fp.mix(cfg.unroll_fallback ? 1 : 0);
    call_hi_ = fp.hi();
    call_lo_ = fp.lo();
    elem_fp_.assign(pl.size(), 0);
    for (size_t e = 0; e < pl.size(); ++e) {
      cache::Fingerprint ef;
      const ir::Program& prog = pl.element(e).model_program();
      ef.mix(ir::program_hash(prog));
      for (uint32_t p = 0; p < prog.num_output_ports; ++p) {
        const auto down = pl.downstream(e, p);
        ef.mix(down ? static_cast<uint64_t>(*down) : ~0ull);
      }
      elem_fp_[e] = ef.hi() ^ (ef.lo() * 0x9e3779b97f4a7c15ull);
    }
  }

  cache::Fingerprint suspect_fingerprint(const ComposeState& st) const {
    cache::Fingerprint fp;
    fp.mix(kFpSuspect);
    fp.mix(call_hi_);
    fp.mix(call_lo_);
    // The decision sees exactly the traversed elements (their summaries
    // shaped the constraint), so bind their content — an edit anywhere
    // else in the pipeline leaves this key (and its answer) valid.
    fp.mix(st.elem_trace.size());
    for (const size_t e : st.elem_trace) fp.mix(elem_fp_[e]);
    fp.mix_expr(st.constraint);
    // The KV history refinement enumerates the owning element's write
    // sites (tables are element-private), so each read binds that
    // element's content plus the stitched key/value expressions.
    fp.mix(st.kv_reads.size());
    for (const PathKvRead& pr : st.kv_reads) {
      fp.mix(elem_fp_[pr.elem]);
      fp.mix(pr.len);
      fp.mix(static_cast<uint64_t>(pr.rec.table));
      fp.mix_expr(pr.rec.key);
      fp.mix_expr(pr.rec.value);
    }
    return fp;
  }

  cache::Fingerprint feasible_fingerprint(const ExprRef& c) const {
    cache::Fingerprint fp;
    fp.mix(kFpFeasible);
    // Satisfiability of a constraint is a property of the expression
    // alone — no pipeline or call context needed, so these entries are
    // shared across every pipeline that composes the same formula.
    fp.mix_expr(c);
    return fp;
  }

  cache::Fingerprint refine_fingerprint(const TerminalSpec& tspec,
                                        const ExprRef& root_constraint,
                                        const std::vector<size_t>& trace)
      const {
    cache::Fingerprint fp;
    fp.mix(kFpRefine);
    fp.mix(call_hi_);
    fp.mix(call_lo_);
    fp.mix(tspec.drop_is_violation ? 1 : 0);
    fp.mix(tspec.trap_is_violation ? 1 : 0);
    fp.mix(tspec.required_exit_port
               ? static_cast<uint64_t>(*tspec.required_exit_port)
               : ~0ull);
    fp.mix_expr(root_constraint);
    // The exact re-walk touches only the trace's elements: their indices
    // (interior steps follow emits into trace[depth+1]) and their content.
    fp.mix(trace.size());
    for (const size_t e : trace) {
      fp.mix(e);
      fp.mix(elem_fp_[e]);
    }
    // The refine budgets are excluded on purpose: they only decide whether
    // an outcome exists (Unknown is never stored), never which one.
    return fp;
  }

  // Feasibility speculation (instruction-bound drivers) through the
  // persistent cache: both polarities are reusable here — acting on Sat
  // needs no model, because the witness comes from a separate one-shot
  // solve on the winning path only.
  solver::Result cached_feasible(const ExprRef& c, solver::Solver& sv,
                                 VerifyStats& vstats) {
    if (cfg.decision_cache != nullptr) {
      const cache::Fingerprint fp = feasible_fingerprint(c);
      bool sat = false;
      if (cfg.decision_cache->lookup_decision(fp.hi(), fp.lo(), &sat)) {
        ++vstats.decision_cache_hits;
        return sat ? solver::Result::Sat : solver::Result::Unsat;
      }
      ++vstats.solver_queries;
      const solver::Result r = sv.check_feasible(c);
      if (r != solver::Result::Unknown) {
        cfg.decision_cache->store_decision(fp.hi(), fp.lo(),
                                           r == solver::Result::Sat);
      }
      return r;
    }
    ++vstats.solver_queries;
    return sv.check_feasible(c);
  }

  // Final per-call stats: the driver-level counters plus the solver-layer
  // totals of every solver instance the call used.
  VerifyStats snapshot_stats() {
    VerifyStats out = stats;
    const auto add = [&out](const solver::CheckStats& cs) {
      out.sat_conflicts += cs.sat_conflicts;
      out.sat_decisions += cs.sat_decisions;
      out.blast_nodes += cs.blast_nodes;
      out.solver_cache_hits += cs.cache_hits;
      out.contexts_opened += cs.contexts_opened;
      out.incremental_queries += cs.incremental_queries;
      out.assumption_reuses += cs.assumption_reuses;
      out.learnt_retained += cs.learnt_retained;
      out.sat_solves += cs.decided_by_sat + cs.incremental_queries;
      out.rewrites_applied += cs.rewrites_applied;
      out.rewrite_decided += cs.rewrite_decided;
      out.slice_decided += cs.slice_decided;
      out.cex_cache_hits += cs.cex_cache_hits;
      out.core_discharges += cs.core_discharges;
      out.learnt_gc_runs += cs.learnt_gc_runs;
      out.learnt_gc_removed += cs.learnt_gc_removed;
      // Solver-layer persistent-memo hits are decision-cache hits for
      // reporting: one counter tells the whole query-avoidance story.
      out.decision_cache_hits += cs.memo_hits;
    };
    add(solver.stats());
    if (jobs > 1) {
      for (size_t w = 0; w < pool.size(); ++w) add(pool.at(w).stats());
    }
    return out;
  }

  void merge_mt_stats() {
    for (const VerifyStats& s : mt_stats_) {
      stats.elements_summarized += s.elements_summarized;
      stats.summary_cache_hits += s.summary_cache_hits;
      stats.segments_total += s.segments_total;
      stats.suspects_found += s.suspects_found;
      stats.suspects_eliminated += s.suspects_eliminated;
      stats.composed_paths_checked += s.composed_paths_checked;
      stats.solver_queries += s.solver_queries;
      stats.instructions_interpreted += s.instructions_interpreted;
      stats.forks += s.forks;
      stats.refinements_attempted += s.refinements_attempted;
      stats.refinements_certified += s.refinements_certified;
      stats.refinements_eliminated += s.refinements_eliminated;
      stats.suspects_core_discharged += s.suspects_core_discharged;
      stats.decision_cache_hits += s.decision_cache_hits;
      stats.refine_cache_hits += s.refine_cache_hits;
    }
    mt_stats_.assign(jobs, VerifyStats{});
  }

  // Step 1 fan-out: summarize every element of the pipeline concurrently.
  // Distinct programs run on distinct workers; duplicates coalesce in the
  // shared cache. Returns the per-element summaries in pipeline order.
  std::vector<const ElementSummary*> prewarm(const pipeline::Pipeline& pl,
                                             Precision precision) {
    std::vector<const ElementSummary*> sums(pl.size(), nullptr);
    parallel_for(*queue, pl.size(), [&](size_t e, size_t w) {
      sums[e] = &summary_for(pl.element(e).model_program(), cfg.packet_len,
                             precision, pool.at(w), mt_stats_[w]);
    });
    return sums;
  }

  void mt_walk(const pipeline::Pipeline& pl, ComposeState root,
               const MtTerminalFn& on_terminal, const MtVisitFn& should_visit,
               Precision precision) {
    queue->submit([this, &pl, st = std::move(root), &on_terminal,
                   &should_visit, precision](size_t w) mutable {
      mt_walk_task(pl, 0, std::move(st), {}, w, on_terminal, should_visit,
                   precision);
    });
    queue->wait_idle();
    if (mt_truncated_.load(std::memory_order_relaxed)) truncated_ = true;
    if (mt_budget_exhausted_.load(std::memory_order_relaxed)) {
      budget_exhausted_ = true;
    }
    stats.composed_paths_checked +=
        mt_paths_checked_.exchange(0, std::memory_order_relaxed);
  }

  void mt_walk_task(const pipeline::Pipeline& pl, size_t elem, ComposeState st,
                    std::vector<uint32_t> order, size_t worker,
                    const MtTerminalFn& on_terminal,
                    const MtVisitFn& should_visit, Precision precision) {
    if (mt_truncated_.load(std::memory_order_relaxed) ||
        mt_budget_exhausted_.load(std::memory_order_relaxed)) {
      return;
    }
    if (!should_visit(elem)) return;
    VerifyStats& wstats = mt_stats_[worker];
    const ElementSummary& sum =
        summary_for(pl.element(elem).model_program(), st.bytes.size(), precision,
                    pool.at(worker), wstats);
    if (sum.truncated) {
      mt_truncated_.store(true, std::memory_order_relaxed);
      return;
    }
    for (uint32_t i = 0; i < sum.segments.size(); ++i) {
      const Segment& g = sum.segments[i];
      const bool is_emit = g.action == SegAction::Emit;
      const std::optional<size_t> down =
          is_emit ? pl.downstream(elem, g.port) : std::nullopt;
      auto expanded = expand_segment(sum, g, st, elem, down, wstats);
      if (!expanded) continue;
      ComposeState next = std::move(*expanded);
      std::vector<uint32_t> corder = order;
      corder.push_back(i);
      if (is_emit && down.has_value()) {
        queue->submit([this, &pl, d = *down, n = std::move(next),
                       o = std::move(corder), &on_terminal, &should_visit,
                       precision](size_t w) mutable {
          mt_walk_task(pl, d, std::move(n), std::move(o), w, on_terminal,
                       should_visit, precision);
        });
        continue;
      }
      const uint64_t done =
          mt_paths_checked_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (done > cfg.max_composed_paths) {
        mt_budget_exhausted_.store(true, std::memory_order_relaxed);
        return;
      }
      TerminalRecord t;
      t.order = std::move(corder);
      t.st = std::move(next);
      t.elem = elem;
      t.seg = &g;
      on_terminal(worker, std::move(t));
    }
  }

  // ---------------------------------------------------------------------
  // Stateful refinement: the bad-value analysis for private state
  // ---------------------------------------------------------------------

  // History constraint for one renamed KV read: the value is the table's
  // default (0) or a value some feasible execution of this element could
  // have written (writer inputs fully fresh — an arbitrary earlier packet).
  ExprRef kv_history_constraint(const pipeline::Pipeline& pl,
                                const PathKvRead& pr, solver::Solver& sv,
                                VerifyStats& vstats) {
    const symbex::KvReadRecord& read = pr.rec;
    const ElementSummary& sum =
        summary_for(pl.element(pr.elem).model_program(), pr.len,
                    Precision::AcceptBounds, sv, vstats);
    ExprRef any = bv::mk_eq(read.value,
                            bv::mk_const(0, read.value->width()));
    for (const Segment& g : sum.segments) {
      for (const auto& wr : g.kv_writes) {
        if (wr.table != read.table) continue;
        // Fresh-rename the writer's entire variable set.
        bv::Substitution sub;
        std::unordered_set<uint64_t> seen;
        const auto rename_all = [&](const ExprRef& e) {
          for (const ExprRef& v : bv::free_variables(e)) {
            if (seen.insert(v->var_id()).second) {
              sub.emplace(v->var_id(), bv::mk_var("wrt." + v->name(),
                                                  v->width()));
            }
          }
        };
        rename_all(g.constraint);
        rename_all(wr.value);
        const ExprRef writer_feasible = bv::substitute(g.constraint, sub);
        const ExprRef written = bv::substitute(wr.value, sub);
        any = bv::mk_lor(
            any, bv::mk_land(writer_feasible,
                             bv::mk_eq(read.value, written)));
      }
    }
    return any;
  }

  // Decides a suspect's stitched constraint, applying the KV history
  // refinement when private-state reads are involved. On Sat, fills the
  // model and state note. `sv`/`vstats` are the calling worker's instances.
  solver::Result decide_suspect(const pipeline::Pipeline& pl,
                                const ComposeState& st,
                                bv::Assignment* model_out,
                                std::string* state_note, solver::Solver& sv,
                                VerifyStats& vstats) {
    obs::ScopedSpan sp(obs::Cat::Stitch, "decide_suspect");
    if (sp) {
      std::string path;
      for (const size_t i : st.elem_trace) {
        if (!path.empty()) path += " > ";
        path += pl.element(i).name();
      }
      sp.arg("path", std::move(path));
      obs::count("verify.suspects_decided");
    }
    // Persistent-cache front-run: a prior run (or serve request) proved
    // this exact stitched material infeasible — skip all solving. Only
    // Unsat is consumed here: a Sat suspect must re-solve for a fresh
    // model, which keeps warm counterexample bytes identical to cold ones.
    bool have_fp = false;
    cache::Fingerprint fp;
    if (cfg.decision_cache != nullptr) {
      fp = suspect_fingerprint(st);
      have_fp = true;
      bool cached_sat = false;
      if (cfg.decision_cache->lookup_decision(fp.hi(), fp.lo(),
                                              &cached_sat) &&
          !cached_sat) {
        ++vstats.decision_cache_hits;
        return solver::Result::Unsat;
      }
    }
    // Core-grouping front-run: a previously harvested unsat core whose
    // conjuncts all appear in this stitched constraint discharges the whole
    // suspect with zero solving — one core typically kills the entire
    // family of suspects stitched over the same infeasible prefix.
    if (cfg.core_grouping && sv.discharge_by_core(st.constraint)) {
      ++vstats.suspects_core_discharged;
      if (have_fp) cfg.decision_cache->store_decision(fp.hi(), fp.lo(), false);
      return solver::Result::Unsat;
    }
    ++vstats.solver_queries;
    solver::CheckResult r = sv.check(st.constraint);
    if (r.result != solver::Result::Sat || st.kv_reads.empty()) {
      if (r.result == solver::Result::Sat && model_out != nullptr) {
        *model_out = std::move(r.model);
      }
      if (have_fp && r.result == solver::Result::Unsat) {
        cfg.decision_cache->store_decision(fp.hi(), fp.lo(), false);
      }
      return r.result;
    }
    // The violation may hinge on values read from private state; ask
    // whether the required values are reachable through any write history.
    ExprRef refined = st.constraint;
    for (const PathKvRead& pr : st.kv_reads) {
      refined = bv::mk_land(refined, kv_history_constraint(pl, pr, sv, vstats));
    }
    ++vstats.solver_queries;
    solver::CheckResult r2 = sv.check(refined);
    if (r2.result == solver::Result::Sat) {
      if (model_out != nullptr) *model_out = std::move(r2.model);
      if (state_note != nullptr) {
        *state_note =
            "requires private state reachable via a prior packet sequence "
            "(KV bad-value analysis: a feasible write history produces the "
            "required value)";
      }
    }
    if (have_fp && r2.result == solver::Result::Unsat) {
      cfg.decision_cache->store_decision(fp.hi(), fp.lo(), false);
    }
    return r2.result;
  }

  // ---------------------------------------------------------------------
  // Per-path unroll refinement
  // ---------------------------------------------------------------------
  //
  // A suspect (wrong-port Emit, Drop, or Trap) whose composed path crossed
  // a summarized loop is Sat-but-uncertifiable: the model may be an
  // artifact of the havocked loop outputs (sat_is_unknown below). Instead
  // of degrading to Unknown, re-execute JUST that element trace with loops
  // concretely unrolled (exact summaries) and decide the violating exits
  // again. Upgrades the suspect to a certified Violated (a model over
  // exact constraints, concretely replayable) or eliminates it (every
  // exact violating exit on the trace is infeasible); stays Unknown only
  // when the exact re-walk blows its budget or the solver gives up. Much
  // cheaper than ExactAll everywhere: one trace's loop-bearing elements
  // are unrolled, not every element of every path.

  struct RefineOutcome {
    solver::Result res = solver::Result::Unknown;
    Counterexample ce;  // valid when res == Sat
  };

  // Exact (unrolled) summaries for the refinement come from a dedicated
  // cache whose executor carries the refinement's wall-clock budget: a
  // loop-heavy element that cannot be unrolled within the budget yields a
  // truncated summary (-> the refinement gives up as Unknown) instead of
  // hanging, and never pollutes the unbudgeted unroll cache.
  symbex::SharedSummaryCache& cache_refine_mem() {
    return cfg.shared_caches ? cfg.shared_caches->refine : own_caches_.refine;
  }

  const ElementSummary& refine_summary(const ir::Program& prog, size_t len,
                                       solver::Solver& sv,
                                       VerifyStats& vstats) {
    symbex::ExecOptions eo;
    eo.loop_mode = symbex::LoopMode::Unroll;
    eo.fork_check = symbex::ForkCheck::Solver;
    eo.solver = &sv;
    eo.time_budget_seconds = cfg.refine_time_budget_seconds;
    if (cfg.refine_max_instructions != 0) {
      eo.max_instructions = cfg.refine_max_instructions;
    }
    eo.max_solver_checks = cfg.refine_max_solver_checks;
    symbex::Executor exec(eo);
    bool was_miss = false;
    const ElementSummary& s = cache_refine_mem().get(prog, len, exec, &was_miss);
    if (was_miss) {
      ++vstats.elements_summarized;
      vstats.segments_total += s.segments.size();
      vstats.instructions_interpreted += s.stats.instructions_interpreted;
      vstats.forks += s.stats.forks;
    } else {
      ++vstats.summary_cache_hits;
    }
    return s;
  }

  RefineOutcome refine_summarized_path(const pipeline::Pipeline& pl,
                                       const TerminalSpec& tspec,
                                       const SymPacket& entry,
                                       const ExprRef& root_constraint,
                                       const std::vector<size_t>& trace,
                                       solver::Solver& sv,
                                       VerifyStats& vstats) {
    RefineOutcome out;
    if (!cfg.unroll_fallback || trace.empty()) return out;
    ++vstats.refinements_attempted;
    obs::ScopedSpan sp(obs::Cat::Refine, "refine_path");
    if (sp) {
      std::string path;
      for (const size_t i : trace) {
        if (!path.empty()) path += " > ";
        path += pl.element(i).name();
      }
      sp.arg("path", std::move(path));
      obs::count("verify.refinements_attempted");
    }
    uint64_t paths = 0;
    bool gave_up = false;  // budget/truncation: result stays Unknown
    bool solver_unknown = false;
    ComposeState root = root_state(entry);
    root.constraint = root_constraint;
    const std::function<void(size_t, ComposeState)> go =
        [&](size_t depth, ComposeState st) {
          if (out.res == solver::Result::Sat || gave_up) return;
          const size_t elem = trace[depth];
          const ElementSummary& sum = refine_summary(
              pl.element(elem).model_program(), st.bytes.size(), sv, vstats);
          if (sum.truncated) {
            gave_up = true;
            return;
          }
          const bool last = depth + 1 == trace.size();
          for (const Segment& g : sum.segments) {
            if (out.res == solver::Result::Sat || gave_up) return;
            const bool is_emit = g.action == SegAction::Emit;
            const std::optional<size_t> down =
                is_emit ? pl.downstream(elem, g.port) : std::nullopt;
            if (!last) {
              // Interior step: follow only Emit edges into the trace's
              // next element.
              if (!is_emit || !down || *down != trace[depth + 1]) continue;
              auto expanded = expand_segment(sum, g, st, elem, down, vstats);
              if (!expanded) continue;
              if (++paths > cfg.max_refine_paths) {
                gave_up = true;
                return;
              }
              go(depth + 1, std::move(*expanded));
              continue;
            }
            // The trace's terminal element: re-decide every violating
            // exit exactly — wrong-port emits leaving the pipeline, drops,
            // and traps alike. Any of them can be routed here when an
            // upstream element's summarized loop over-approximated the
            // stitched constraint (the suspect element's own drop/trap
            // constraints were already exact, but the path prefix feeding
            // them was not).
            if (is_emit && down.has_value()) continue;  // not a terminal
            if (!terminal_violates(tspec, g.action, g.port)) continue;
            auto expanded = expand_segment(sum, g, st, elem, down, vstats);
            if (!expanded) continue;
            if (++paths > cfg.max_refine_paths) {
              gave_up = true;
              return;
            }
            bv::Assignment model;
            std::string note;
            const solver::Result r =
                decide_suspect(pl, *expanded, &model, &note, sv, vstats);
            if (r == solver::Result::Unknown) {
              solver_unknown = true;
              continue;
            }
            if (r == solver::Result::Unsat) {
              ++vstats.suspects_eliminated;
              continue;
            }
            out.res = solver::Result::Sat;
            out.ce = make_counterexample(pl, entry, *expanded, model,
                                         g.action == SegAction::Trap
                                             ? g.trap
                                             : ir::TrapKind::Unreachable,
                                         std::move(note));
            // Annotate without flipping requires_sequence: a refined model
            // satisfies exact constraints and replays as a single packet
            // (unless the KV analysis above also flagged it).
            const char* refined_note =
                "certified by per-path unroll refinement (summarized loop "
                "re-executed unrolled along this path)";
            out.ce.state_note = out.ce.state_note.empty()
                                    ? refined_note
                                    : out.ce.state_note + "; " + refined_note;
          }
        };
    go(0, std::move(root));
    if (out.res == solver::Result::Sat) {
      ++vstats.refinements_certified;
      return out;
    }
    if (gave_up || solver_unknown) return out;  // Unknown
    out.res = solver::Result::Unsat;  // every exact exit infeasible
    ++vstats.refinements_eliminated;
    return out;
  }

  // Several uncertifiable suspects can share one element trace (the
  // trace's last element may have multiple wrong-port exits): the exact
  // re-walk is paid once per trace and its counterexample reported once.
  // `first` tells the caller whether this call computed the outcome.
  std::map<std::vector<size_t>, RefineOutcome> refine_cache_;

  const RefineOutcome& refine_cached(const pipeline::Pipeline& pl,
                                     const TerminalSpec& tspec,
                                     const SymPacket& entry,
                                     const ExprRef& root_constraint,
                                     const std::vector<size_t>& trace,
                                     solver::Solver& sv, VerifyStats& vstats,
                                     bool* first) {
    const auto it = refine_cache_.find(trace);
    if (it != refine_cache_.end()) {
      *first = false;
      return it->second;
    }
    *first = true;
    if (cfg.decision_cache != nullptr) {
      // Whole refinement outcomes persist across runs, counterexample
      // included: the CE was certified against exact (unrolled)
      // constraints, so replaying its stored bytes is as sound as
      // recomputing them — and byte-identical, which the determinism
      // battery asserts. Unknown (budget/solver give-up) is never stored.
      const cache::Fingerprint fp =
          refine_fingerprint(tspec, root_constraint, trace);
      bool sat = false;
      RefineOutcome ro;
      if (cfg.decision_cache->lookup_refine(fp.hi(), fp.lo(), &sat, &ro.ce)) {
        ++vstats.refine_cache_hits;
        ro.res = sat ? solver::Result::Sat : solver::Result::Unsat;
        return refine_cache_.emplace(trace, std::move(ro)).first->second;
      }
      ro = refine_summarized_path(pl, tspec, entry, root_constraint, trace,
                                  sv, vstats);
      if (ro.res != solver::Result::Unknown) {
        cfg.decision_cache->store_refine(
            fp.hi(), fp.lo(), ro.res == solver::Result::Sat, ro.ce);
      }
      return refine_cache_.emplace(trace, std::move(ro)).first->second;
    }
    return refine_cache_
        .emplace(trace, refine_summarized_path(pl, tspec, entry,
                                               root_constraint, trace, sv,
                                               vstats))
        .first->second;
  }

  // ---------------------------------------------------------------------
  // Bounded state / flow occupancy
  // ---------------------------------------------------------------------

  // A KvWrite site stitched onto a pipeline path: the path+segment
  // constraint and the key expression, both over the entry packet.
  struct PathInsertSite {
    size_t elem = 0;
    ir::TableId table = 0;
    ExprRef guard;
    ExprRef key;
    std::vector<PathKvRead> kv_reads;  // reads along the path (refinement)
  };

  // Per-(element, packet length) state summaries, derived from the
  // segment summary actually used at that pipeline position. Keying by
  // length matters: an element downstream of encap/decap executes at a
  // different length than the pipeline entry, and its writes may be
  // reachable only there.
  std::map<std::pair<size_t, size_t>, symbex::StateSummary>
      state_writes_memo_;

  const symbex::StateSummary& element_state_at(const pipeline::Pipeline& pl,
                                               size_t elem, size_t len,
                                               const ElementSummary& sum) {
    const auto key = std::make_pair(elem, len);
    const auto it = state_writes_memo_.find(key);
    if (it != state_writes_memo_.end()) return it->second;
    return state_writes_memo_
        .emplace(key, symbex::summarize_state(pl.element(elem).model_program(), sum))
        .first->second;
  }

  // DFS over the composed pipeline collecting every insert site of the
  // counted elements. `filter` prunes subtrees that cannot reach a
  // counted element.
  void collect_state_sites(const pipeline::Pipeline& pl, size_t elem,
                           ComposeState st, const std::vector<bool>& counted,
                           const std::vector<bool>& filter,
                           std::vector<PathInsertSite>* out) {
    if (!filter[elem] || truncated_ || budget_exhausted_) return;
    const ElementSummary& sum =
        summary_for(pl.element(elem).model_program(), st.bytes.size(),
                    Precision::AcceptBounds, solver, stats);
    if (sum.truncated) {
      truncated_ = true;
      return;
    }
    // The element's state summary classifies which writes of which
    // segments can insert; only those are stitched below.
    const symbex::StateSummary* ss = nullptr;
    if (counted[elem]) {
      const symbex::StateSummary& s =
          element_state_at(pl, elem, st.bytes.size(), sum);
      if (s.insert_site_count() > 0) ss = &s;
    }
    for (size_t si = 0; si < sum.segments.size(); ++si) {
      const Segment& g = sum.segments[si];
      if (truncated_ || budget_exhausted_) return;
      const bool is_emit = g.action == SegAction::Emit;
      const std::optional<size_t> down =
          is_emit ? pl.downstream(elem, g.port) : std::nullopt;
      const bool continues = is_emit && down.has_value();
      if (!continues && ss == nullptr) continue;
      auto inst = instantiate(sum, g, st, continues, ss != nullptr);
      if (!inst) continue;
      ComposeState next;
      next.constraint = inst->constraint;
      next.kv_reads = st.kv_reads;
      for (const auto& r : inst->kv_reads) {
        next.kv_reads.push_back(PathKvRead{elem, st.bytes.size(), r});
      }
      next.elem_trace = st.elem_trace;
      next.elem_trace.push_back(elem);
      if (ss != nullptr) {
        for (const symbex::TableStateSummary& ts : ss->tables) {
          for (const symbex::StateSite& site_in : ts.inserts) {
            if (site_in.segment != si) continue;
            const auto& wr = inst->kv_writes.at(site_in.write_index);
            // Stitching only folds further: a write whose stitched value
            // is now provably 0 is an eviction after all.
            if (symbex::is_evict_write(wr.value)) continue;
            // An entry is live only when the written value is non-zero;
            // folding it into the guard forces enumeration models to
            // choose genuinely-live insertions, so certification replay
            // counts exactly what enumeration counted.
            const ExprRef live = bv::mk_land(
                inst->constraint,
                bv::mk_ne(wr.value, bv::mk_const(0, wr.value->width())));
            if (live->is_false()) continue;
            PathInsertSite site;
            site.elem = elem;
            site.table = ts.table;
            site.guard = live;
            site.key = wr.key;
            site.kv_reads = next.kv_reads;
            out->push_back(std::move(site));
          }
        }
      }
      if (continues) {
        ++stats.composed_paths_checked;
        if (stats.composed_paths_checked > cfg.max_composed_paths) {
          budget_exhausted_ = true;
          return;
        }
        next.bytes = std::move(inst->out_bytes);
        next.meta = inst->out_meta;
        collect_state_sites(pl, *down, std::move(next), counted, filter,
                            out);
      }
    }
  }

  StateBoundReport bounded_state(const pipeline::Pipeline& pl,
                                 const InputPredicate& predicate,
                                 const StateBoundSpec& spec) {
    Timer timer;
    StateBoundReport report;
    report.bound = spec.bound;

    std::vector<bool> counted(pl.size(), false);
    for (size_t e = 0; e < pl.size(); ++e) {
      counted[e] =
          spec.element.empty() || pl.element(e).name() == spec.element;
    }

    // Step 1 (parallel engine: fanned out across workers; the enumeration
    // below is inherently sequential — every query depends on the keys
    // found so far — so it runs identically at any job count).
    if (jobs > 1) {
      begin_call_mt(pl);
      prewarm(pl, Precision::AcceptBounds);
      merge_mt_stats();
    } else {
      begin_call(pl);
    }

    // Report scaffolding: every table of every counted element appears in
    // the report, even when provably empty. (Table declarations don't
    // depend on packet length; whether a table has reachable insert sites
    // does, and is decided per pipeline position during the walk below.)
    std::map<std::pair<size_t, ir::TableId>, TableOccupancy> occupancy;
    for (size_t e = 0; e < pl.size(); ++e) {
      if (!counted[e]) continue;
      const ir::Program& prog = pl.element(e).model_program();
      for (size_t t = 0; t < prog.kv_tables.size(); ++t) {
        TableOccupancy occ;
        occ.element = e;
        occ.element_name = pl.element(e).name();
        occ.table_name = prog.kv_tables[t].name;
        occ.exhausted = true;  // until enumeration says otherwise
        occupancy.emplace(
            std::make_pair(e, static_cast<ir::TableId>(t)), occ);
      }
    }

    const SymPacket entry = SymPacket::symbolic(cfg.packet_len, "in");
    ComposeState root = root_state(entry);
    root.constraint = predicate(entry);

    // Steps 1+2: stitch every insert site onto its pipeline paths
    // (summaries come from the cache prewarm above when jobs > 1).
    std::vector<PathInsertSite> sites;
    {
      const std::vector<bool> filter = reachability_filter(pl, counted);
      collect_state_sites(pl, 0, std::move(root), counted, filter, &sites);
    }
    if (truncated_ || budget_exhausted_) {
      report.verdict = Verdict::Unknown;
      report.stats = snapshot_stats();
      report.seconds = timer.seconds();
      return report;
    }

    // Step 3: enumerate distinct feasible keys per (element, table) with
    // blocking clauses. Each Sat model is one injectable packet creating
    // one new entry; Unsat with all found keys blocked exhausts the table.
    std::map<std::pair<size_t, ir::TableId>,
             std::vector<const PathInsertSite*>>
        groups;
    for (const PathInsertSite& s : sites) {
      groups[{s.elem, s.table}].push_back(&s);
    }
    uint64_t total = 0;
    uint64_t keys_budget = 0;
    bool unknown = false;
    bool over = false;
    // A table with insert sites counts as exhausted only once every site
    // ran dry; tables skipped because the bound was already exceeded must
    // not claim a proof.
    for (const auto& [id, group] : groups) {
      (void)group;
      occupancy.at(id).exhausted = false;
    }
    for (const auto& [id, group] : groups) {
      TableOccupancy& occ = occupancy.at(id);
      obs::ScopedSpan esp(obs::Cat::Enumerate, "enumerate_keys");
      if (esp) {
        esp.arg("element", occupancy.at(id).element_name);
        esp.arg("table", occupancy.at(id).table_name);
      }
      std::vector<uint64_t> found;
      // Incremental enumeration: one live SAT context per table. Each
      // site's refined constraint (guard ∧ KV write history, fixed per
      // site) is passed as assumptions — switching sites retracts it for
      // free — while everything learnt finding or excluding one key keeps
      // pruning the next query. Enumeration is sequential-by-design on the
      // main solver at any job count and the context starts fresh here, so
      // the models (hence packet bytes) are byte-identical at any --jobs.
      std::unique_ptr<solver::SolverContext> ectx;
      if (cfg.incremental) {
        ectx = std::make_unique<solver::SolverContext>(solver);
      }
      for (const PathInsertSite* site : group) {
        // The bad-value refinement for reads along the site's path: fixed
        // per site, so it is conjoined up front (and blasted once) rather
        // than re-derived per model as the one-shot path does.
        ExprRef refined;
        if (ectx && !site->kv_reads.empty()) {
          refined = site->guard;
          for (const PathKvRead& pr : site->kv_reads) {
            refined = bv::mk_land(
                refined, kv_history_constraint(pl, pr, solver, stats));
          }
        }
        for (;;) {
          if (++keys_budget > cfg.max_state_keys) {
            unknown = true;
            break;
          }
          ExprRef q = ectx && refined ? refined : site->guard;
          for (const uint64_t v : found) {
            q = bv::mk_land(
                q, bv::mk_ne(site->key,
                             bv::mk_const(v, site->key->width())));
          }
          bv::Assignment model;
          solver::Result r;
          if (ectx) {
            ++stats.solver_queries;
            solver::CheckResult cr = ectx->check_assuming(q);
            r = cr.result;
            model = std::move(cr.model);
          } else {
            ComposeState cs;
            cs.constraint = q;
            cs.kv_reads = site->kv_reads;
            r = decide_suspect(pl, cs, &model, nullptr, solver, stats);
          }
          if (r == solver::Result::Unsat) break;  // site dry; next site
          if (r == solver::Result::Unknown) {
            unknown = true;
            break;
          }
          // The blocking clause joins the live context as a new assumption
          // conjunct on the next iteration: it blasts once, stays cached
          // for the rest of the table's enumeration, and every conflict
          // learnt from it keeps pruning later models — yet it retracts
          // automatically when enumeration moves to a site with a
          // different key expression (a permanent assertion would leak
          // this site's blocks into the other sites' queries).
          found.push_back(bv::evaluate(site->key, model));
          obs::count("verify.state_keys_found");
          report.packet_sequence.push_back(entry.to_concrete(model));
          ++total;
          if (total > spec.bound) {
            over = true;
            break;
          }
        }
        if (unknown || over) break;
      }
      occ.keys_found = found.size();
      if (unknown || over) break;
      occ.exhausted = true;  // every site of this table ran dry
    }
    for (auto& [id, occ] : occupancy) report.tables.push_back(occ);
    report.occupancy = total;

    if (over) {
      // Certify: the sequence must concretely drive occupancy past the
      // bound (guards Violated against loop-havoc artifacts in stitched
      // constraints).
      const uint64_t replayed = replay_sequence_occupancy_counted(
          pl, report.packet_sequence, counted);
      if (replayed > spec.bound) {
        report.verdict = Verdict::Violated;
      } else {
        report.verdict = Verdict::Unknown;
        report.sequence_uncertified = true;
        report.packet_sequence.clear();
      }
    } else if (unknown) {
      report.verdict = Verdict::Unknown;
      report.packet_sequence.clear();
    } else {
      report.verdict = Verdict::Proven;
      report.packet_sequence.clear();
    }
    report.stats = snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }

  // ---------------------------------------------------------------------
  // Helpers shared by the public property drivers
  // ---------------------------------------------------------------------

  // Entry lengths each element can be reached at, starting from
  // cfg.packet_len at element 0. pkt_pull / pkt_push change the packet
  // length mid-pipeline and Step-1 summaries are per-length, so a suspect
  // scan over entry-length summaries alone is unsound: an element whose
  // summary at the pipeline entry length is trap-free can still trap at
  // the shorter length an upstream strip hands it (found by fuzzing:
  // "Strip14 -> EthDecap -> UnsafeStrip(20) -> ToyE1" at 48 bytes strips
  // the packet to 0 bytes before ToyE1's reads). Emit-segment exit lengths
  // are concrete, so the length sets close over the pipeline with plain
  // set arithmetic — no constraint stitching, no solver. Segments whose
  // isolated constraint already folded to false are skipped; composed
  // infeasibility is NOT consulted, so the sets over-approximate — safe,
  // since Step 2 still decides every suspect with the stitched constraint.
  std::vector<std::set<size_t>> reachable_entry_lengths(
      const pipeline::Pipeline& pl, solver::Solver& sv, VerifyStats& vstats,
      bool* any_truncated) {
    std::vector<std::set<size_t>> lens(pl.size());
    std::vector<std::pair<size_t, size_t>> work;
    const auto push = [&](size_t e, size_t len) {
      if (lens[e].insert(len).second) work.emplace_back(e, len);
    };
    push(0, cfg.packet_len);
    while (!work.empty()) {
      const auto [e, len] = work.back();
      work.pop_back();
      const ElementSummary& sum =
          summary_for(pl.element(e).model_program(), len,
                      Precision::AcceptBounds, sv, vstats);
      if (sum.truncated) {
        *any_truncated = true;
        continue;
      }
      for (const Segment& g : sum.segments) {
        if (g.action != SegAction::Emit || g.constraint->is_false()) continue;
        const std::optional<size_t> down = pl.downstream(e, g.port);
        if (down) push(*down, g.exit_packet.bytes().size());
      }
    }
    return lens;
  }

  // Elements from which any suspect-bearing element is reachable.
  std::vector<bool> reachability_filter(
      const pipeline::Pipeline& pl, const std::vector<bool>& is_target) {
    const size_t n = pl.size();
    std::vector<bool> can_reach(is_target);
    // Fixed-point over the DAG (small graphs; no need for topo order).
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t e = 0; e < n; ++e) {
        if (can_reach[e]) continue;
        for (uint32_t p = 0; p < pl.element(e).num_output_ports(); ++p) {
          const auto d = pl.downstream(e, p);
          if (d && can_reach[*d]) {
            can_reach[e] = true;
            changed = true;
            break;
          }
        }
      }
    }
    return can_reach;
  }

  Counterexample make_counterexample(const pipeline::Pipeline& pl,
                                     const SymPacket& entry,
                                     const ComposeState& st,
                                     const bv::Assignment& model,
                                     ir::TrapKind trap,
                                     std::string note) {
    Counterexample ce;
    ce.packet = entry.to_concrete(model);
    for (const size_t e : st.elem_trace) {
      ce.element_path.push_back(pl.element(e).name());
    }
    ce.trap = trap;
    // A note at this point always comes from the KV bad-value analysis:
    // the model relies on private state a prior packet sequence must build.
    ce.requires_sequence = !note.empty();
    ce.state_note = std::move(note);
    return ce;
  }

  static ComposeState root_state(const SymPacket& entry) {
    ComposeState root;
    root.bytes = entry.bytes();
    for (size_t i = 0; i < net::kMetaSlots; ++i) root.meta[i] = entry.meta(i);
    return root;
  }

  // ---------------------------------------------------------------------
  // Parallel property drivers
  // ---------------------------------------------------------------------

  // Shared by the crash-freedom and reachability drivers: walk, decide
  // every suspect terminal on the worker that reached it, then reduce the
  // outcomes in sequential DFS order (sort by address) so eliminations,
  // truncation, and the counterexample list come out exactly as at jobs=1.
  // `is_suspect` selects the property's suspect terminals and reports the
  // trap kind for the counterexample. Returns the violated flag.
  // `is_suspect` may set *sat_is_unknown for suspects whose Sat outcome
  // cannot certify a violation (over-approximated constraints): those
  // degrade to Unknown instead of Violated.
  bool decide_suspects_mt(
      const pipeline::Pipeline& pl, ComposeState root, const SymPacket& entry,
      const MtVisitFn& should_visit, Precision precision,
      const std::function<bool(const TerminalRecord&, size_t worker,
                               ir::TrapKind* trap, bool* sat_is_unknown)>&
          is_suspect,
      std::vector<Counterexample>* counterexamples,
      const TerminalSpec* refine_tspec = nullptr,
      const ExprRef* refine_root = nullptr) {
    struct Outcome {
      std::vector<uint32_t> order;
      solver::Result res = solver::Result::Unknown;
      bool sat_is_unknown = false;
      Counterexample ce;
      std::vector<size_t> trace;  // for the unroll refinement
    };
    std::mutex out_mu;
    std::vector<Outcome> outcomes;
    mt_walk(
        pl, std::move(root),
        [&](size_t w, TerminalRecord&& t) {
          ir::TrapKind trap = ir::TrapKind::Unreachable;
          bool sat_unknown = false;
          if (!is_suspect(t, w, &trap, &sat_unknown)) return;
          bv::Assignment model;
          std::string note;
          const solver::Result r = decide_suspect(pl, t.st, &model, &note,
                                                  pool.at(w), mt_stats_[w]);
          Outcome o;
          o.order = std::move(t.order);
          o.res = r;
          o.sat_is_unknown = sat_unknown;
          if (r == solver::Result::Sat && !sat_unknown) {
            o.ce = make_counterexample(pl, entry, t.st, model, trap,
                                       std::move(note));
          } else if (r == solver::Result::Sat) {
            o.trace = t.st.elem_trace;
          }
          std::lock_guard<std::mutex> lock(out_mu);
          outcomes.push_back(std::move(o));
        },
        should_visit, precision);
    std::sort(outcomes.begin(), outcomes.end(), [](const Outcome& a,
                                                   const Outcome& b) {
      return a.order < b.order;
    });
    merge_mt_stats();
    bool violated = false;
    for (Outcome& o : outcomes) {
      if (o.res == solver::Result::Unsat) {
        ++stats.suspects_eliminated;
        continue;
      }
      if (o.res == solver::Result::Sat && o.sat_is_unknown) {
        // Uncertifiable summarized-loop suspect: refine on the main
        // solver, in DFS order — outcomes stay identical at any job count.
        if (refine_tspec != nullptr && refine_root != nullptr) {
          bool first = false;
          const RefineOutcome& ro =
              refine_cached(pl, *refine_tspec, entry, *refine_root, o.trace,
                            solver, stats, &first);
          if (ro.res == solver::Result::Sat) {
            violated = true;
            if (first) counterexamples->push_back(ro.ce);
            continue;
          }
          if (ro.res == solver::Result::Unsat) continue;  // eliminated
        }
        truncated_ = true;
        continue;
      }
      if (o.res == solver::Result::Unknown) {
        truncated_ = true;
        continue;
      }
      violated = true;
      counterexamples->push_back(std::move(o.ce));
    }
    return violated;
  }

  CrashFreedomReport crash_freedom_mt(const pipeline::Pipeline& pl) {
    Timer timer;
    begin_call_mt(pl);
    CrashFreedomReport report;

    // Step 1, fanned out: one summarization task per element at the entry
    // length. The length fixpoint below mostly hits that warm cache; it
    // only summarizes extra (element, length) pairs downstream of strips.
    prewarm(pl, Precision::AcceptBounds);
    std::vector<bool> has_suspect(pl.size(), false);
    bool any_truncated = false;
    const std::vector<std::set<size_t>> lens =
        reachable_entry_lengths(pl, pool.at(0), mt_stats_[0], &any_truncated);
    for (size_t e = 0; e < pl.size(); ++e) {
      for (const size_t len : lens[e]) {
        const ElementSummary& sum =
            summary_for(pl.element(e).model_program(), len,
                        Precision::AcceptBounds, pool.at(0), mt_stats_[0]);
        if (sum.truncated) any_truncated = true;
        for (const Segment& g : sum.segments) {
          if (g.action != SegAction::Trap) continue;
          ++mt_stats_[0].suspects_found;
          if (!g.constraint->is_false()) has_suspect[e] = true;
        }
      }
    }
    if (any_truncated) {
      merge_mt_stats();
      report.verdict = Verdict::Unknown;
      report.stats = snapshot_stats();
      report.seconds = timer.seconds();
      return report;
    }
    if (std::none_of(has_suspect.begin(), has_suspect.end(),
                     [](bool b) { return b; })) {
      merge_mt_stats();
      report.verdict = Verdict::Proven;
      report.stats = snapshot_stats();
      report.seconds = timer.seconds();
      return report;
    }

    // Step 2, fanned out: walk forks per feasible edge; each suspect trap
    // is decided on the worker that reached it, with that worker's solver.
    // Sat traps on summarized-loop paths refine in the DFS-ordered reduce
    // (see sat_is_unknown), identically to the sequential engine.
    const std::vector<bool> filter = reachability_filter(pl, has_suspect);
    const SymPacket entry = SymPacket::symbolic(cfg.packet_len, "in");
    TerminalSpec crash_tspec;
    crash_tspec.drop_is_violation = false;
    crash_tspec.trap_is_violation = true;
    const ExprRef crash_root = bv::mk_bool(true);
    const bool violated = decide_suspects_mt(
        pl, root_state(entry), entry, [&](size_t e) { return filter[e]; },
        Precision::AcceptBounds,
        [](const TerminalRecord& t, size_t /*w*/, ir::TrapKind* trap,
           bool* sat_unknown) {
          if (t.seg->action != SegAction::Trap) return false;
          *trap = t.seg->trap;
          *sat_unknown = t.st.count_is_bound;
          return true;
        },
        &report.counterexamples, &crash_tspec, &crash_root);

    if (violated) {
      report.verdict = Verdict::Violated;
    } else if (truncated_ || budget_exhausted_) {
      report.verdict = Verdict::Unknown;
    } else {
      report.verdict = Verdict::Proven;
    }
    report.stats = snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }

  InstructionBoundReport instruction_bound_mt(const pipeline::Pipeline& pl) {
    Timer timer;
    begin_call_mt(pl);
    InstructionBoundReport report;
    prewarm(pl, Precision::AcceptBounds);

    const SymPacket entry = SymPacket::symbolic(cfg.packet_len, "in");
    // Terminals are buffered before deciding, so peak memory is O(paths)
    // where jobs=1 streams — per terminal just the DFS address plus refs
    // into the (immortal, interned) constraint DAG. Acceptable up to the
    // path budget; revisit with streamed batches if budgets grow.
    struct Rec {
      std::vector<uint32_t> order;
      uint64_t total = 0;
      bool is_bound = false;
      ExprRef constraint;
    };
    std::mutex rec_mu;
    std::vector<Rec> recs;
    mt_walk(
        pl, root_state(entry),
        [&](size_t /*w*/, TerminalRecord&& t) {
          Rec r;
          r.order = std::move(t.order);
          r.total = t.st.count;
          r.is_bound = t.st.count_is_bound;
          r.constraint = t.st.constraint;
          std::lock_guard<std::mutex> lock(rec_mu);
          recs.push_back(std::move(r));
        },
        [](size_t) { return true; }, Precision::AcceptBounds);

    std::sort(recs.begin(), recs.end(),
              [](const Rec& a, const Rec& b) { return a.order < b.order; });

    // Batched speculative decision with the sequential engine's exact
    // semantics. The jobs=1 driver walks terminals in DFS order, solving
    // only when a terminal's count could improve the running max. Here we
    // gather the next batch of candidates under the current max, decide
    // them concurrently, then apply results in DFS order — dropping any
    // speculative result whose candidate the sequential engine would have
    // skipped (its count no longer beats the max by apply time). Verdict,
    // bound, and witness are bit-identical to jobs=1; only the (wasted)
    // speculation differs.
    uint64_t best = 0;
    bool best_is_bound = false;
    bv::ExprRef best_constraint;
    bool saw_unknown = false;
    const size_t batch_max = std::max<size_t>(4 * jobs, 16);
    size_t cursor = 0;
    while (cursor < recs.size()) {
      std::vector<size_t> batch;
      batch.reserve(batch_max);
      size_t next_cursor = recs.size();
      for (size_t j = cursor; j < recs.size(); ++j) {
        if (recs[j].total > best) {
          batch.push_back(j);
          if (batch.size() == batch_max) {
            next_cursor = j + 1;
            break;
          }
        }
      }
      if (batch.empty()) break;
      std::vector<solver::Result> res(batch.size(), solver::Result::Unknown);
      parallel_for(*queue, batch.size(), [&](size_t bi, size_t w) {
        res[bi] = cached_feasible(recs[batch[bi]].constraint, pool.at(w),
                                  mt_stats_[w]);
      });
      for (size_t bi = 0; bi < batch.size(); ++bi) {
        Rec& r = recs[batch[bi]];
        if (r.total <= best) continue;  // wasted speculation; seq skipped it
        if (res[bi] == solver::Result::Unsat) continue;
        if (res[bi] == solver::Result::Unknown) {
          saw_unknown = true;
          continue;
        }
        best = r.total;
        best_is_bound = r.is_bound;
        best_constraint = r.constraint;
      }
      cursor = next_cursor;
    }
    merge_mt_stats();

    report.max_instructions = best;
    report.bound_is_exact = !best_is_bound;
    // The witness model comes from a one-shot solve on the main solver —
    // deterministic in the constraint alone, so the packet bytes match
    // jobs=1 exactly no matter which worker decided feasibility. Under a
    // finite conflict budget that fresh solve can come back Unknown even
    // though the incremental context already proved the path feasible; no
    // witness is derivable then, so the verdict honestly degrades.
    const bool already_unknown =
        truncated_ || budget_exhausted_ || saw_unknown;
    solver::CheckResult witness_model;
    if (best_constraint && !already_unknown) {
      witness_model = solver.check(best_constraint);
    }
    if (already_unknown ||
        (best_constraint &&
         witness_model.result != solver::Result::Sat)) {
      report.verdict = Verdict::Unknown;
    } else {
      report.verdict = Verdict::Proven;
      net::Packet witness = entry.to_concrete(witness_model.model);
      report.witness_instructions = replay_instruction_count(pl, witness);
      report.witness = std::move(witness);
    }
    report.stats = snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }

  // True when a composed terminal (Drop, Trap, or Emit leaving the
  // pipeline at `port`) violates the spec.
  static bool terminal_violates(const TerminalSpec& spec, SegAction action,
                                uint32_t port) {
    switch (action) {
      case SegAction::Drop: return spec.drop_is_violation;
      case SegAction::Trap: return spec.trap_is_violation;
      case SegAction::Emit:
        return spec.required_exit_port.has_value() &&
               port != *spec.required_exit_port;
    }
    return false;
  }

  // Reach/never properties run at ExactDropsTraps: Drop/Trap segments of
  // the suspect element itself are decided on exact (unrolled)
  // constraints, while Emit segments may keep their summarized-loop
  // over-approximation. That keeps Proven sound (over-approximation never
  // hides a feasible terminal) without unrolling every loop-bearing
  // element the way ExactAll does (exponential on e.g. IPOptions at
  // MTU-ish lengths). But a Sat model for ANY suspect whose composed path
  // crossed a summarized loop — in the suspect element or any element
  // UPSTREAM of it — is not a certified violation: the model may be an
  // artifact of the havocked loop outputs feeding the stitched constraint
  // (e.g. SetIPChecksum's summarized sum loop havocs the checksum bytes a
  // downstream CheckIPHeader tests, making "bad checksum -> drop" Sat for
  // packets the real element would fix). Such suspects re-decide on the
  // per-path unroll refinement and either certify a replayable
  // counterexample, eliminate the artifact, or degrade to Unknown. The
  // differential fuzz harness caught exactly this class as unreplayable
  // counterexamples before the path-wide gate existed.
  static bool sat_is_unknown(const TerminalSpec& spec, SegAction action,
                             bool count_is_bound) {
    (void)spec;
    (void)action;
    return count_is_bound;
  }

  ReachabilityReport reach_never_mt(const pipeline::Pipeline& pl,
                                    const InputPredicate& predicate,
                                    const TerminalSpec& tspec) {
    Timer timer;
    begin_call_mt(pl);
    ReachabilityReport report;

    const SymPacket entry = SymPacket::symbolic(cfg.packet_len, "in");
    ComposeState root = root_state(entry);
    root.constraint = predicate(entry);
    if (root.constraint->is_false()) {
      report.verdict = Verdict::Proven;  // vacuous: no packet matches
      report.seconds = timer.seconds();
      return report;
    }
    const ExprRef root_constraint = root.constraint;
    prewarm(pl, Precision::ExactDropsTraps);
    const bool violated = decide_suspects_mt(
        pl, std::move(root), entry, [](size_t) { return true; },
        Precision::ExactDropsTraps,
        [this, &tspec](const TerminalRecord& t, size_t w, ir::TrapKind* trap,
                       bool* sat_unknown) {
          if (!terminal_violates(tspec, t.seg->action, t.seg->port)) {
            return false;
          }
          ++mt_stats_[w].suspects_found;
          *trap = t.seg->action == SegAction::Trap ? t.seg->trap
                                                   : ir::TrapKind::Unreachable;
          *sat_unknown =
              sat_is_unknown(tspec, t.seg->action, t.st.count_is_bound);
          return true;
        },
        &report.counterexamples, &tspec, &root_constraint);

    if (violated) {
      report.verdict = Verdict::Violated;
    } else if (truncated_ || budget_exhausted_) {
      report.verdict = Verdict::Unknown;
    } else {
      report.verdict = Verdict::Proven;
    }
    report.stats = snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }

  ComposedPaths enumerate_paths_mt(const pipeline::Pipeline& pl) {
    begin_call_mt(pl);
    ComposedPaths out;
    out.entry = SymPacket::symbolic(cfg.packet_len, "in");
    prewarm(pl, Precision::ExactAll);

    struct Item {
      std::vector<uint32_t> order;
      ComposedPath path;
    };
    std::mutex item_mu;
    std::vector<Item> items;
    mt_walk(
        pl, root_state(out.entry),
        [&](size_t /*w*/, TerminalRecord&& t) {
          Item it;
          it.order = std::move(t.order);
          it.path.constraint = t.st.constraint;
          for (const size_t e : t.st.elem_trace) {
            it.path.element_path.push_back(pl.element(e).name());
          }
          it.path.action = t.seg->action;
          it.path.port = t.seg->port;
          it.path.trap = t.seg->trap;
          it.path.instr_count = t.st.count;
          it.path.count_is_bound = t.st.count_is_bound;
          std::lock_guard<std::mutex> lock(item_mu);
          items.push_back(std::move(it));
        },
        [](size_t) { return true; }, Precision::ExactAll);

    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.order < b.order; });
    merge_mt_stats();
    out.paths.reserve(items.size());
    for (Item& it : items) out.paths.push_back(std::move(it.path));
    out.complete = !truncated_ && !budget_exhausted_;
    return out;
  }

  std::unordered_map<const Segment*, std::vector<ExprRef>> aux_cache_;
  std::mutex aux_mu_;
  bool truncated_ = false;
  bool budget_exhausted_ = false;

  // Parallel-engine state, reset per call.
  std::vector<VerifyStats> mt_stats_;
  std::atomic<uint64_t> mt_paths_checked_{0};
  std::atomic<bool> mt_truncated_{false};
  std::atomic<bool> mt_budget_exhausted_{false};
};

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

uint64_t replay_sequence_occupancy(const pipeline::Pipeline& pl,
                                   const std::vector<net::Packet>& sequence,
                                   const std::string& element) {
  std::vector<bool> counted(pl.size(), false);
  for (size_t e = 0; e < pl.size(); ++e) {
    counted[e] = element.empty() || pl.element(e).name() == element;
  }
  return replay_sequence_occupancy_counted(pl, sequence, counted);
}

DecomposedVerifier::DecomposedVerifier(DecomposedConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

DecomposedVerifier::~DecomposedVerifier() = default;

symbex::SharedSummaryCache& DecomposedVerifier::cache() {
  return impl_->cache_summarize();
}
solver::Solver& DecomposedVerifier::solver() { return impl_->solver; }
const DecomposedConfig& DecomposedVerifier::config() const {
  return impl_->cfg;
}

CrashFreedomReport DecomposedVerifier::verify_crash_freedom(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  obs::ScopedSpan phase(obs::Cat::Phase, "crash_freedom");
  if (im.jobs > 1) return im.crash_freedom_mt(pl);
  Timer timer;
  im.begin_call(pl);
  CrashFreedomReport report;

  // Step 1: summarize every element at every entry length it can be
  // reached at (strips/encaps change the length mid-pipeline — see
  // reachable_entry_lengths); find suspects (feasible trap segments under
  // unconstrained element input).
  std::vector<bool> has_suspect(pl.size(), false);
  bool any_truncated = false;
  const std::vector<std::set<size_t>> lens = im.reachable_entry_lengths(
      pl, im.solver, im.stats, &any_truncated);
  for (size_t e = 0; e < pl.size(); ++e) {
    for (const size_t len : lens[e]) {
      const ElementSummary& sum =
          im.summary_for(pl.element(e).model_program(), len,
                         Impl::Precision::AcceptBounds, im.solver, im.stats);
      if (sum.truncated) any_truncated = true;
      for (const Segment& g : sum.segments) {
        if (g.action != SegAction::Trap) continue;
        ++im.stats.suspects_found;
        if (!g.constraint->is_false()) has_suspect[e] = true;
      }
    }
  }
  if (any_truncated) {
    report.verdict = Verdict::Unknown;
    report.stats = im.snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }
  const bool none = std::none_of(has_suspect.begin(), has_suspect.end(),
                                 [](bool b) { return b; });
  if (none) {
    // No element can trap for any input: the pipeline provably never
    // crashes, no composition needed.
    report.verdict = Verdict::Proven;
    report.stats = im.snapshot_stats();
    report.seconds = timer.seconds();
    return report;
  }

  // Step 2: compose paths that can reach a suspect element and decide each
  // suspect trap with the full stitched constraint.
  const std::vector<bool> filter = im.reachability_filter(pl, has_suspect);
  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root = Impl::root_state(entry);

  // For Sat trap suspects on paths that crossed a summarized loop (in any
  // upstream element), the model may be a havoc artifact — certify or
  // eliminate via the per-path unroll refinement, exactly like reach/never.
  TerminalSpec crash_tspec;
  crash_tspec.drop_is_violation = false;
  crash_tspec.trap_is_violation = true;
  const bv::ExprRef crash_root = bv::mk_bool(true);

  bool violated = false;
  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        if (g.action != SegAction::Trap) return;
        bv::Assignment model;
        std::string note;
        const solver::Result r =
            im.decide_suspect(pl, st, &model, &note, im.solver, im.stats);
        if (r == solver::Result::Unsat) {
          ++im.stats.suspects_eliminated;
          return;
        }
        if (r == solver::Result::Unknown) {
          im.truncated_ = true;
          return;
        }
        if (st.count_is_bound) {
          bool first = false;
          const Impl::RefineOutcome& ro =
              im.refine_cached(pl, crash_tspec, entry, crash_root,
                               st.elem_trace, im.solver, im.stats, &first);
          if (ro.res == solver::Result::Sat) {
            violated = true;
            if (first) report.counterexamples.push_back(ro.ce);
          } else if (ro.res == solver::Result::Unknown) {
            im.truncated_ = true;
          }
          return;  // Unsat: certified infeasible once unrolled
        }
        violated = true;
        report.counterexamples.push_back(im.make_counterexample(
            pl, entry, st, model, g.trap, std::move(note)));
      },
      [&](size_t e) { return filter[e]; },
      Impl::Precision::AcceptBounds);

  if (violated) {
    report.verdict = Verdict::Violated;
  } else if (!complete || im.truncated_) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
  }
  report.stats = im.snapshot_stats();
  report.seconds = timer.seconds();
  return report;
}

InstructionBoundReport DecomposedVerifier::verify_instruction_bound(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  obs::ScopedSpan phase(obs::Cat::Phase, "instruction_bound");
  if (im.jobs > 1) return im.instruction_bound_mt(pl);
  Timer timer;
  im.begin_call(pl);
  InstructionBoundReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root = Impl::root_state(entry);

  uint64_t best = 0;
  bool best_is_bound = false;
  bv::ExprRef best_constraint;
  bool saw_unknown = false;

  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        // st already includes the terminal segment's count (walk adds it
        // before invoking the callback).
        (void)g;
        const uint64_t total = st.count;
        if (total <= best) return;  // cannot improve the max
        // Feasibility only — these speculative decisions share long path
        // prefixes, exactly the incremental context's workload. The witness
        // model is derived once at the end, for the winning path only.
        const solver::Result r =
            im.cached_feasible(st.constraint, im.solver, im.stats);
        if (r == solver::Result::Unsat) return;
        if (r == solver::Result::Unknown) {
          saw_unknown = true;
          return;
        }
        best = total;
        best_is_bound = st.count_is_bound || g.count_is_bound;
        best_constraint = st.constraint;
      },
      [](size_t) { return true; },
      Impl::Precision::AcceptBounds);

  report.max_instructions = best;
  report.bound_is_exact = !best_is_bound;
  // See instruction_bound_mt: the deterministic one-shot witness solve can
  // exhaust a finite conflict budget even though feasibility was already
  // decided — without a model there is no witness, hence no proof claim.
  const bool already_unknown = !complete || im.truncated_ || saw_unknown;
  solver::CheckResult witness_model;
  if (best_constraint && !already_unknown) {
    witness_model = im.solver.check(best_constraint);
  }
  if (already_unknown ||
      (best_constraint &&
       witness_model.result != solver::Result::Sat)) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
    net::Packet witness = entry.to_concrete(witness_model.model);
    // Replay the witness concretely (scratch private state, the live
    // pipeline is untouched) to report the achieved count: equals the bound
    // when exact, a measured value under the bound otherwise.
    report.witness_instructions = replay_instruction_count(pl, witness);
    report.witness = std::move(witness);
  }
  report.stats = im.snapshot_stats();
  report.seconds = timer.seconds();
  return report;
}

ComposedPaths DecomposedVerifier::enumerate_paths(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  if (im.jobs > 1) return im.enumerate_paths_mt(pl);
  im.begin_call(pl);
  ComposedPaths out;
  out.entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root = Impl::root_state(out.entry);

  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        ComposedPath cp;
        cp.constraint = st.constraint;
        for (const size_t e : st.elem_trace) {
          cp.element_path.push_back(pl.element(e).name());
        }
        cp.action = g.action;
        cp.port = g.port;
        cp.trap = g.trap;
        cp.instr_count = st.count;
        cp.count_is_bound = st.count_is_bound;
        out.paths.push_back(std::move(cp));
      },
      [](size_t) { return true; }, Impl::Precision::ExactAll);
  out.complete = complete && !im.truncated_;
  return out;
}

ReachabilityReport DecomposedVerifier::verify_never_dropped(
    const pipeline::Pipeline& pl, const InputPredicate& predicate) {
  return verify_reach_never(pl, predicate, TerminalSpec{});
}

StateBoundReport DecomposedVerifier::verify_bounded_state(
    const pipeline::Pipeline& pl, const InputPredicate& predicate,
    const StateBoundSpec& spec) {
  obs::ScopedSpan phase(obs::Cat::Phase, "bounded_state");
  return impl_->bounded_state(pl, predicate, spec);
}

ReachabilityReport DecomposedVerifier::verify_reach_never(
    const pipeline::Pipeline& pl, const InputPredicate& predicate,
    const TerminalSpec& tspec) {
  Impl& im = *impl_;
  obs::ScopedSpan phase(obs::Cat::Phase, "reach_never");
  if (im.jobs > 1) return im.reach_never_mt(pl, predicate, tspec);
  Timer timer;
  im.begin_call(pl);
  ReachabilityReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  Impl::ComposeState root = Impl::root_state(entry);
  root.constraint = predicate(entry);
  if (root.constraint->is_false()) {
    report.verdict = Verdict::Proven;  // vacuous: no packet matches
    report.seconds = timer.seconds();
    return report;
  }
  const bv::ExprRef root_constraint = root.constraint;

  bool violated = false;
  const bool complete = im.walk(
      pl, 0, std::move(root),
      [&](const Impl::ComposeState& st, size_t /*elem*/, const Segment& g) {
        if (!Impl::terminal_violates(tspec, g.action, g.port)) return;
        ++im.stats.suspects_found;
        bv::Assignment model;
        std::string note;
        const solver::Result r =
            im.decide_suspect(pl, st, &model, &note, im.solver, im.stats);
        if (r == solver::Result::Unsat) {
          ++im.stats.suspects_eliminated;
          return;
        }
        if (r == solver::Result::Unknown) {
          im.truncated_ = true;
          return;
        }
        if (Impl::sat_is_unknown(tspec, g.action, st.count_is_bound)) {
          // Sat on over-approximated loop outputs proves nothing; re-walk
          // just this path with the loop concretely unrolled (memoized:
          // suspects sharing a trace pay for and report one refinement).
          bool first = false;
          const Impl::RefineOutcome& ro =
              im.refine_cached(pl, tspec, entry, root_constraint,
                               st.elem_trace, im.solver, im.stats, &first);
          if (ro.res == solver::Result::Sat) {
            violated = true;
            if (first) report.counterexamples.push_back(ro.ce);
          } else if (ro.res == solver::Result::Unknown) {
            im.truncated_ = true;
          }
          return;  // Unsat: certified infeasible once unrolled
        }
        violated = true;
        report.counterexamples.push_back(im.make_counterexample(
            pl, entry, st, model,
            g.action == SegAction::Trap ? g.trap : ir::TrapKind::Unreachable,
            std::move(note)));
      },
      [](size_t) { return true; },
      Impl::Precision::ExactDropsTraps);

  if (violated) {
    report.verdict = Verdict::Violated;
  } else if (!complete || im.truncated_) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
  }
  report.stats = im.snapshot_stats();
  report.seconds = timer.seconds();
  return report;
}

}  // namespace vsd::verify
