#include "verify/predicates.hpp"

#include <algorithm>
#include <map>

namespace vsd::verify {

using bv::ExprRef;

namespace {

ExprRef load_be_field(const symbex::SymPacket& p, size_t off,
                      unsigned bytes) {
  return p.load(off, bytes).value;
}

// Layout relative to the start of the IP header; offset 64 flags an eth.*
// field (relative to the start of the Ethernet header, ip_offset - 14).
struct RelField {
  int rel = 0;         // byte offset within the protocol header
  unsigned bytes = 1;
  unsigned bit_lo = 0;
  unsigned bit_width = 0;
};

const std::map<std::string, RelField>& eth_fields() {
  static const std::map<std::string, RelField> t = {
      {"dst", {0, 6}}, {"src", {6, 6}}, {"type", {12, 2}},
  };
  return t;
}

const std::map<std::string, RelField>& ip_fields() {
  static const std::map<std::string, RelField> t = {
      {"ver", {0, 1, 4, 4}},  // high nibble of the first byte
      {"ihl", {0, 1, 0, 4}},  // low nibble
      {"tos", {1, 1}},        {"len", {2, 2}},   {"id", {4, 2}},
      {"frag", {6, 2}},       {"ttl", {8, 1}},   {"proto", {9, 1}},
      {"checksum", {10, 2}},  {"src", {12, 4}},  {"dst", {16, 4}},
  };
  return t;
}

// L4 fields sit right after the 20-byte IPv4 header. The layout assumes
// ihl == 5 (the fast path `wellformed` pins); a spec constraining tcp.*
// or udp.* of an options-bearing packet constrains the options bytes
// instead, which is why the vspec docs say to conjoin `wellformed`.
const std::map<std::string, RelField>& tcp_fields() {
  static const std::map<std::string, RelField> t = {
      {"sport", {0, 2}}, {"dport", {2, 2}}, {"seq", {4, 4}},
      {"ack", {8, 4}},   {"flags", {13, 1}},
  };
  return t;
}

const std::map<std::string, RelField>& udp_fields() {
  static const std::map<std::string, RelField> t = {
      {"sport", {0, 2}},
      {"dport", {2, 2}},
      {"len", {4, 2}},
      {"checksum", {6, 2}},
  };
  return t;
}

}  // namespace

std::optional<FieldSpec> lookup_field(const std::string& proto,
                                      const std::string& field,
                                      size_t ip_offset) {
  const RelField* rel = nullptr;
  size_t base = 0;
  if (proto == "ip") {
    const auto it = ip_fields().find(field);
    if (it == ip_fields().end()) return std::nullopt;
    rel = &it->second;
    base = ip_offset;
  } else if (proto == "eth") {
    if (ip_offset < net::kEtherHeaderSize) return std::nullopt;
    const auto it = eth_fields().find(field);
    if (it == eth_fields().end()) return std::nullopt;
    rel = &it->second;
    base = ip_offset - net::kEtherHeaderSize;
  } else if (proto == "tcp") {
    const auto it = tcp_fields().find(field);
    if (it == tcp_fields().end()) return std::nullopt;
    rel = &it->second;
    base = ip_offset + net::kIpv4MinHeaderSize;
  } else if (proto == "udp") {
    const auto it = udp_fields().find(field);
    if (it == udp_fields().end()) return std::nullopt;
    rel = &it->second;
    base = ip_offset + net::kIpv4MinHeaderSize;
  } else {
    return std::nullopt;
  }
  FieldSpec f;
  f.offset = base + static_cast<size_t>(rel->rel);
  f.bytes = rel->bytes;
  f.bit_lo = rel->bit_lo;
  f.bit_width = rel->bit_width;
  return f;
}

std::vector<std::string> known_field_names() {
  std::vector<std::string> names;
  for (const auto& [n, _] : eth_fields()) names.push_back("eth." + n);
  for (const auto& [n, _] : ip_fields()) names.push_back("ip." + n);
  for (const auto& [n, _] : tcp_fields()) names.push_back("tcp." + n);
  for (const auto& [n, _] : udp_fields()) names.push_back("udp." + n);
  names.push_back("pkt.len");
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<bv::ExprRef> field_value(const symbex::SymPacket& p,
                                       const FieldSpec& f) {
  if (p.size() < f.offset + f.bytes) return std::nullopt;
  ExprRef v = load_be_field(p, f.offset, f.bytes);
  if (f.bit_width != 0) v = bv::mk_extract(v, f.bit_lo, f.bit_width);
  return v;
}

bv::ExprRef wellformed_ipv4_at(const symbex::SymPacket& p, size_t ip_offset) {
  if (p.size() < ip_offset + net::kIpv4MinHeaderSize) return bv::mk_bool(false);
  ExprRef c = bv::mk_bool(true);
  const ExprRef ver_ihl = load_be_field(p, ip_offset + 0, 1);
  c = bv::mk_land(c, bv::mk_eq(ver_ihl, bv::mk_const(0x45, 8)));  // v4, ihl 5
  const ExprRef totlen = load_be_field(p, ip_offset + 2, 2);
  c = bv::mk_land(c, bv::mk_uge(totlen, bv::mk_const(20, 16)));
  // total_len must not exceed the bytes actually present after the IP start.
  const uint64_t avail = p.size() - ip_offset;
  c = bv::mk_land(
      c, bv::mk_ule(totlen, bv::mk_const(std::min<uint64_t>(avail, 0xffff), 16)));
  // Not a fragment (fragments may legitimately bypass L4 processing).
  const ExprRef frag = load_be_field(p, ip_offset + 6, 2);
  c = bv::mk_land(c, bv::mk_eq(bv::mk_and(frag, bv::mk_const(0x3fff, 16)),
                               bv::mk_const(0, 16)));
  const ExprRef ttl = load_be_field(p, ip_offset + 8, 1);
  c = bv::mk_land(c, bv::mk_ugt(ttl, bv::mk_const(1, 8)));
  return c;
}

bv::ExprRef wellformed_ipv4_checksummed_at(const symbex::SymPacket& p,
                                           size_t ip_offset) {
  ExprRef c = wellformed_ipv4_at(p, ip_offset);
  if (c->is_false()) return c;
  ExprRef sum = bv::mk_const(0, 32);
  for (size_t w = 0; w < 10; ++w) {  // ihl == 5 per wellformed_ipv4_at
    sum = bv::mk_add(sum, bv::mk_zext(load_be_field(p, ip_offset + 2 * w, 2),
                                      32));
  }
  for (int fold = 0; fold < 3; ++fold) {
    sum = bv::mk_add(bv::mk_and(sum, bv::mk_const(0xffff, 32)),
                     bv::mk_lshr(sum, bv::mk_const(16, 32)));
  }
  return bv::mk_land(c, bv::mk_eq(sum, bv::mk_const(0xffff, 32)));
}

bv::ExprRef wellformed_ipv4(const symbex::SymPacket& p, size_t eth_offset) {
  const size_t ip = eth_offset + net::kEtherHeaderSize;
  if (p.size() < ip + net::kIpv4MinHeaderSize) return bv::mk_bool(false);
  const ExprRef ethertype_ok =
      bv::mk_eq(load_be_field(p, eth_offset + 12, 2),
                bv::mk_const(net::kEtherTypeIpv4, 16));
  return bv::mk_land(ethertype_ok, wellformed_ipv4_at(p, ip));
}

bv::ExprRef wellformed_ipv4_checksummed(const symbex::SymPacket& p,
                                        size_t eth_offset) {
  const size_t ip = eth_offset + net::kEtherHeaderSize;
  if (p.size() < ip + net::kIpv4MinHeaderSize) return bv::mk_bool(false);
  const ExprRef ethertype_ok =
      bv::mk_eq(load_be_field(p, eth_offset + 12, 2),
                bv::mk_const(net::kEtherTypeIpv4, 16));
  return bv::mk_land(ethertype_ok, wellformed_ipv4_checksummed_at(p, ip));
}

bv::ExprRef dst_ip_is(const symbex::SymPacket& p, uint32_t addr,
                      size_t ip_offset) {
  if (p.size() < ip_offset + 20) return bv::mk_bool(false);
  return bv::mk_eq(load_be_field(p, ip_offset + 16, 4),
                   bv::mk_const(addr, 32));
}

}  // namespace vsd::verify
