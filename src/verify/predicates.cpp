#include "verify/predicates.hpp"

namespace vsd::verify {

using bv::ExprRef;

namespace {

ExprRef load_be(const symbex::SymPacket& p, size_t off, unsigned bytes) {
  return p.load(off, bytes).value;
}

}  // namespace

bv::ExprRef wellformed_ipv4(const symbex::SymPacket& p, size_t eth_offset) {
  const size_t ip = eth_offset + net::kEtherHeaderSize;
  if (p.size() < ip + net::kIpv4MinHeaderSize) return bv::mk_bool(false);
  ExprRef c = bv::mk_bool(true);
  c = bv::mk_land(c, bv::mk_eq(load_be(p, eth_offset + 12, 2),
                               bv::mk_const(net::kEtherTypeIpv4, 16)));
  const ExprRef ver_ihl = load_be(p, ip + 0, 1);
  c = bv::mk_land(c, bv::mk_eq(ver_ihl, bv::mk_const(0x45, 8)));  // v4, ihl 5
  const ExprRef totlen = load_be(p, ip + 2, 2);
  c = bv::mk_land(c, bv::mk_uge(totlen, bv::mk_const(20, 16)));
  // total_len must not exceed the bytes actually present after the MAC hdr.
  const uint64_t avail = p.size() - ip;
  c = bv::mk_land(
      c, bv::mk_ule(totlen, bv::mk_const(std::min<uint64_t>(avail, 0xffff), 16)));
  // Not a fragment (fragments may legitimately bypass L4 processing).
  const ExprRef frag = load_be(p, ip + 6, 2);
  c = bv::mk_land(c, bv::mk_eq(bv::mk_and(frag, bv::mk_const(0x3fff, 16)),
                               bv::mk_const(0, 16)));
  const ExprRef ttl = load_be(p, ip + 8, 1);
  c = bv::mk_land(c, bv::mk_ugt(ttl, bv::mk_const(1, 8)));
  return c;
}

bv::ExprRef wellformed_ipv4_checksummed(const symbex::SymPacket& p,
                                        size_t eth_offset) {
  ExprRef c = wellformed_ipv4(p, eth_offset);
  if (c->is_false()) return c;
  const size_t ip = eth_offset + net::kEtherHeaderSize;
  ExprRef sum = bv::mk_const(0, 32);
  for (size_t w = 0; w < 10; ++w) {  // ihl == 5 per wellformed_ipv4
    sum = bv::mk_add(sum, bv::mk_zext(load_be(p, ip + 2 * w, 2), 32));
  }
  for (int fold = 0; fold < 3; ++fold) {
    sum = bv::mk_add(bv::mk_and(sum, bv::mk_const(0xffff, 32)),
                     bv::mk_lshr(sum, bv::mk_const(16, 32)));
  }
  return bv::mk_land(c, bv::mk_eq(sum, bv::mk_const(0xffff, 32)));
}

bv::ExprRef dst_ip_is(const symbex::SymPacket& p, uint32_t addr,
                      size_t ip_offset) {
  if (p.size() < ip_offset + 20) return bv::mk_bool(false);
  return bv::mk_eq(load_be(p, ip_offset + 16, 4), bv::mk_const(addr, 32));
}

}  // namespace vsd::verify
