#include "verify/parallel.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace vsd::verify {

WorkQueue::WorkQueue(size_t jobs) {
  const size_t n = jobs == 0 ? 1 : jobs;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkQueue::~WorkQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkQueue::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void WorkQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void WorkQueue::worker_loop(size_t index) {
  // Worker w traces on lane w+1; lane 0 stays the caller's main thread.
  obs::set_lane(static_cast<uint32_t>(index) + 1);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      obs::ScopedSpan sp(obs::Cat::Task, "task");
      task(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(WorkQueue& queue, size_t n,
                  const std::function<void(size_t, size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    queue.submit([i, &fn](size_t worker) { fn(i, worker); });
  }
  queue.wait_idle();
}

}  // namespace vsd::verify
