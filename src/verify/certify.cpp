#include "verify/certify.hpp"

#include <sstream>

#include "elements/common.hpp"
#include "elements/registry.hpp"

namespace vsd::verify {

namespace {

// Rebuilds "A -> B -> C" with `candidate` spliced in after stage
// `insert_after` (0-based).
std::string splice_config(const std::string& base, const std::string& cand,
                          size_t insert_after) {
  std::vector<std::string> stages;
  size_t pos = 0;
  while (pos < base.size()) {
    const size_t arrow = base.find("->", pos);
    stages.push_back(base.substr(
        pos, arrow == std::string::npos ? std::string::npos : arrow - pos));
    pos = arrow == std::string::npos ? base.size() : arrow + 2;
  }
  std::ostringstream os;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) os << " -> ";
    os << elements::trim(stages[i]);
    if (i == insert_after) os << " -> " << cand;
  }
  return os.str();
}

}  // namespace

CertificationReport certify_element(DecomposedVerifier& verifier,
                                    const std::string& base_config,
                                    const std::string& candidate_config,
                                    size_t insert_after) {
  CertificationReport report;
  pipeline::Pipeline base = elements::parse_pipeline(base_config);
  const std::string upgraded_config =
      splice_config(base_config, candidate_config, insert_after);
  pipeline::Pipeline upgraded = elements::parse_pipeline(upgraded_config);

  report.bound_before = verifier.verify_instruction_bound(base);
  report.crash = verifier.verify_crash_freedom(upgraded);
  report.bound_after = verifier.verify_instruction_bound(upgraded);

  const bool bounds_ok = report.bound_before.verdict == Verdict::Proven &&
                         report.bound_after.verdict == Verdict::Proven;
  report.certified =
      report.crash.verdict == Verdict::Proven && bounds_ok;
  if (bounds_ok &&
      report.bound_after.max_instructions >=
          report.bound_before.max_instructions) {
    report.max_added_instructions = report.bound_after.max_instructions -
                                    report.bound_before.max_instructions;
  }

  std::ostringstream os;
  os << "candidate: " << candidate_config << "\n"
     << "pipeline:  " << upgraded_config << "\n"
     << "crash-freedom: " << verdict_name(report.crash.verdict) << "\n"
     << "instruction bound: " << report.bound_before.max_instructions
     << " -> " << report.bound_after.max_instructions;
  if (bounds_ok) {
    os << " (max added per packet: " << report.max_added_instructions << ")";
  }
  os << "\nverdict: " << (report.certified ? "CERTIFIED" : "REJECTED");
  report.summary = os.str();
  return report;
}

}  // namespace vsd::verify
