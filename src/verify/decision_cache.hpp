// The verifier-side seam for the persistent cross-run decision cache.
//
// The engine never touches disk itself: DecomposedConfig carries a pointer
// to this interface and cache::VerdictCache (src/cache/) implements it over
// the content-addressed store. Keys are 128-bit run-stable fingerprints the
// engine computes from the stitched material (cache/fingerprint.hpp);
// everything a decision's outcome depends on — the constraint structure,
// the KV-read element programs, the property/config scalars, the packet
// length — is folded into the key, and the engine version lives in the
// store's framing. Soundness stance: a cached Unsat may skip the solver
// (infeasible stays infeasible under an identical key); a Sat suspect is
// always re-decided when counterexample bytes are needed, except refine
// outcomes, which persist their certified counterexample verbatim.
//
// Implementations must be thread-safe: parallel workers consult the cache
// concurrently.
#pragma once

#include <cstdint>

#include "solver/solver.hpp"
#include "verify/report.hpp"

namespace vsd::verify {

// Extends the solver's FeasibilityMemo seam: the engine hands the same
// cache object to each Solver (so summarization-time fork checks memoize
// across runs) and consults it directly for its own stitched-suspect and
// refine decisions. lookup_decision/store_decision — the feasibility of one
// constraint, with Unknown never stored — are inherited.
class PathDecisionCache : public solver::FeasibilityMemo {
 public:
  ~PathDecisionCache() override = default;

  // Outcome of a whole per-path unroll refinement: Unsat (trace
  // eliminated) or Sat with the certified counterexample.
  virtual bool lookup_refine(uint64_t hi, uint64_t lo, bool* sat,
                             Counterexample* ce) = 0;
  virtual void store_refine(uint64_t hi, uint64_t lo, bool sat,
                            const Counterexample& ce) = 0;
};

}  // namespace vsd::verify
