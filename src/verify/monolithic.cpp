#include "verify/monolithic.hpp"

#include <chrono>

#include "bv/analysis.hpp"

namespace vsd::verify {

using bv::ExprRef;
using symbex::SegAction;
using symbex::Segment;
using symbex::SymPacket;

class MonolithicVerifier::Impl {
 public:
  explicit Impl(MonolithicConfig config) : cfg(config) {
    solver.set_max_conflicts(cfg.max_solver_conflicts);
    // The baseline measures the paper's "general-purpose verifier": every
    // fork check and every terminal decision is a from-scratch one-shot
    // solve. Without this opt-out the PR-4 incremental decision layer
    // (context reuse across the S2E-style fork checks) would quietly speed
    // up the baseline too, and tab3's decomposed-vs-monolithic comparison
    // would no longer measure the paper's true baseline.
    solver.set_incremental(false);
  }

  MonolithicConfig cfg;
  solver::Solver solver;
  MonolithicStats mstats;
  std::chrono::steady_clock::time_point deadline;
  bool out_of_time = false;

  void begin() {
    mstats = {};
    solver.reset_stats();  // per-call counters, like the decomposed engine
    out_of_time = false;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(cfg.time_budget_seconds));
  }

  bool expired() {
    if (out_of_time) return true;
    if (std::chrono::steady_clock::now() >= deadline) {
      out_of_time = true;
      mstats.budget_exhausted = true;
    }
    return out_of_time;
  }

  symbex::Executor make_executor() {
    symbex::ExecOptions eo;
    eo.loop_mode = symbex::LoopMode::Unroll;  // no decomposition, ever
    eo.fork_check = cfg.solver_at_forks ? symbex::ForkCheck::Solver
                                        : symbex::ForkCheck::FoldOnly;
    eo.solver = &solver;
    eo.max_instructions = cfg.max_instructions;
    // A single whole-element exploration must not outlive the verifier's
    // wall-clock budget: hand it the remaining time.
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    eo.time_budget_seconds = std::max(remaining, 0.001);
    return symbex::Executor(eo);
  }

  // Explores the pipeline as one program: element `elem` is symbolically
  // executed under the accumulated path constraint, and every Emit segment
  // recursively continues into its downstream element. No summaries are
  // reused — exactly the 2^(k·n) regime. Returns false on budget
  // exhaustion.
  template <typename TerminalFn>
  bool explore_chain(const pipeline::Pipeline& pl, size_t elem,
                     const SymPacket& pkt, std::vector<ExprRef> conjuncts,
                     uint64_t count, const TerminalFn& on_terminal) {
    if (expired()) return false;
    symbex::Executor exec = make_executor();
    symbex::ExploreResult r = exec.explore(pl.element(elem).model_program(),
                                           pkt, conjuncts);
    mstats.instructions_interpreted += r.stats.instructions_interpreted;
    mstats.forks += r.stats.forks;
    mstats.solver_queries += r.stats.solver_queries;
    if (r.truncated) {
      mstats.budget_exhausted = true;
      return false;
    }
    for (Segment& g : r.segments) {
      if (expired()) return false;
      if (g.action == SegAction::Emit) {
        const auto down = pl.downstream(elem, g.port);
        if (down) {
          if (!explore_chain(pl, *down, g.exit_packet,
                             std::move(g.conjuncts), count + g.instr_count,
                             on_terminal)) {
            return false;
          }
          continue;
        }
      }
      ++mstats.paths_explored;
      if (mstats.paths_explored > cfg.max_paths) {
        mstats.budget_exhausted = true;
        return false;
      }
      on_terminal(elem, g, count + g.instr_count);
    }
    return true;
  }

  // Copies the solver-layer counters into the per-call stats. The
  // incremental counters must come back zero — the baseline runs with
  // set_incremental(false) — and the regression test asserts exactly that
  // through these fields.
  void snapshot_solver_stats(VerifyStats* out) {
    const solver::CheckStats& s = solver.stats();
    mstats.contexts_opened = s.contexts_opened;
    mstats.incremental_queries = s.incremental_queries;
    mstats.assumption_reuses = s.assumption_reuses;
    out->sat_conflicts = s.sat_conflicts;
    out->sat_decisions = s.sat_decisions;
    out->blast_nodes = s.blast_nodes;
    out->solver_cache_hits = s.cache_hits;
    out->contexts_opened = s.contexts_opened;
    out->incremental_queries = s.incremental_queries;
    out->assumption_reuses = s.assumption_reuses;
  }
};

MonolithicVerifier::MonolithicVerifier(MonolithicConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

MonolithicVerifier::~MonolithicVerifier() = default;

const MonolithicStats& MonolithicVerifier::last_stats() const {
  return impl_->mstats;
}

CrashFreedomReport MonolithicVerifier::verify_crash_freedom(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  im.begin();
  const auto t0 = std::chrono::steady_clock::now();
  CrashFreedomReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  bool violated = false;
  const bool complete = im.explore_chain(
      pl, 0, entry, {}, 0,
      [&](size_t /*elem*/, const Segment& g, uint64_t /*count*/) {
        if (g.action != SegAction::Trap) return;
        const solver::CheckResult r = im.solver.check(g.constraint);
        ++im.mstats.solver_queries;
        if (r.result != solver::Result::Sat) return;
        violated = true;
        Counterexample ce;
        ce.packet = entry.to_concrete(r.model);
        ce.trap = g.trap;
        report.counterexamples.push_back(std::move(ce));
      });

  if (violated) {
    report.verdict = Verdict::Violated;
  } else if (!complete || im.mstats.budget_exhausted) {
    report.verdict = Verdict::Unknown;  // "did not complete"
  } else {
    report.verdict = Verdict::Proven;
  }
  report.stats.solver_queries = im.mstats.solver_queries;
  report.stats.instructions_interpreted = im.mstats.instructions_interpreted;
  report.stats.forks = im.mstats.forks;
  report.stats.composed_paths_checked = im.mstats.paths_explored;
  im.snapshot_solver_stats(&report.stats);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

InstructionBoundReport MonolithicVerifier::verify_instruction_bound(
    const pipeline::Pipeline& pl) {
  Impl& im = *impl_;
  im.begin();
  const auto t0 = std::chrono::steady_clock::now();
  InstructionBoundReport report;

  const SymPacket entry = SymPacket::symbolic(im.cfg.packet_len, "in");
  uint64_t best = 0;
  bv::Assignment best_model;
  const bool complete = im.explore_chain(
      pl, 0, entry, {}, 0,
      [&](size_t /*elem*/, const Segment& g, uint64_t total) {
        if (total <= best) return;
        const solver::CheckResult r = im.solver.check(g.constraint);
        ++im.mstats.solver_queries;
        if (r.result != solver::Result::Sat) return;
        best = total;
        best_model = r.model;
      });

  report.max_instructions = best;
  report.bound_is_exact = true;  // unrolled: every count is exact
  if (!complete || im.mstats.budget_exhausted) {
    report.verdict = Verdict::Unknown;
  } else {
    report.verdict = Verdict::Proven;
    report.witness = entry.to_concrete(best_model);
    report.witness_instructions = best;
  }
  report.stats.solver_queries = im.mstats.solver_queries;
  report.stats.instructions_interpreted = im.mstats.instructions_interpreted;
  report.stats.forks = im.mstats.forks;
  report.stats.composed_paths_checked = im.mstats.paths_explored;
  im.snapshot_solver_stats(&report.stats);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace vsd::verify
