// Ready-made input predicates for reachability properties, e.g. the
// paper's "any packet with destination IP address X will never be dropped
// unless it is malformed" (§1).
#pragma once

#include <cstdint>

#include "bv/expr.hpp"
#include "net/headers.hpp"
#include "symbex/sym_packet.hpp"

namespace vsd::verify {

// True when the packet is a structurally well-formed Ethernet+IPv4 frame:
// EtherType 0x0800, version 4, 5 <= ihl, header fits, total_len consistent,
// TTL > 1, and no IP options (ihl == 5) so the fast path applies. The IP
// header starts at `eth_offset + 14`.
bv::ExprRef wellformed_ipv4(const symbex::SymPacket& p,
                            size_t eth_offset = 0);

// As above plus valid header checksum (one's-complement sum over the
// 20-byte header equals 0xffff).
bv::ExprRef wellformed_ipv4_checksummed(const symbex::SymPacket& p,
                                        size_t eth_offset = 0);

// Destination address equality, IP header at `ip_offset`.
bv::ExprRef dst_ip_is(const symbex::SymPacket& p, uint32_t addr,
                      size_t ip_offset);

// Conjunction helper.
inline bv::ExprRef both(const bv::ExprRef& a, const bv::ExprRef& b) {
  return bv::mk_land(a, b);
}

}  // namespace vsd::verify
