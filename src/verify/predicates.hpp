// Input predicates over the symbolic entry packet, e.g. the paper's "any
// packet with destination IP address X will never be dropped unless it is
// malformed" (§1).
//
// Two layers:
//  - a reusable field-access layer: named header fields (FieldSpec) resolved
//    by protocol/field name and lowered to bv expressions over a SymPacket —
//    the vocabulary of the vspec property-specification language;
//  - ready-made well-formedness predicates built on top of it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bv/expr.hpp"
#include "net/headers.hpp"
#include "symbex/sym_packet.hpp"

namespace vsd::verify {

// --- Field-access layer ------------------------------------------------------

// A named header field: a big-endian byte range within the frame, plus an
// optional sub-byte bit slice (ip.ver / ip.ihl live in nibbles).
struct FieldSpec {
  size_t offset = 0;       // absolute byte offset within the frame
  unsigned bytes = 1;      // big-endian width in bytes (1..8)
  unsigned bit_lo = 0;     // bit slice [bit_lo, bit_lo+bit_width) of the value
  unsigned bit_width = 0;  // 0 = the whole byte range
  unsigned value_width() const { return bit_width ? bit_width : bytes * 8; }
};

// Resolves "proto.field" (e.g. "ip.dst", "eth.type", "tcp.dport") to its
// byte layout. `ip_offset` is where the IPv4 header starts within the
// frame; eth.* fields require ip_offset >= 14 (the Ethernet header precedes
// the IP header) and return nullopt otherwise. tcp.*/udp.* fields sit at
// ip_offset + 20, i.e. they assume the 20-byte option-less IPv4 header
// (conjoin `wellformed` in specs to pin ihl == 5). Unknown names return
// nullopt.
std::optional<FieldSpec> lookup_field(const std::string& proto,
                                      const std::string& field,
                                      size_t ip_offset);

// All recognized "proto.field" names (for diagnostics/suggestions).
std::vector<std::string> known_field_names();

// The field's value as a bv expression over the packet bytes, or nullopt if
// the packet is too short to contain the field (callers typically treat a
// comparison on a missing field as false).
std::optional<bv::ExprRef> field_value(const symbex::SymPacket& p,
                                       const FieldSpec& f);

// --- Well-formedness predicates ------------------------------------------------

// Structural IPv4 well-formedness with the IP header at `ip_offset` (no
// EtherType check — for pipelines whose packets start at the IP header):
// version 4, ihl == 5 (no options, fast path), 20 <= total_len <= bytes
// present, not a fragment, TTL > 1.
bv::ExprRef wellformed_ipv4_at(const symbex::SymPacket& p, size_t ip_offset);

// As above plus a valid header checksum (one's-complement sum over the
// 20-byte header equals 0xffff).
bv::ExprRef wellformed_ipv4_checksummed_at(const symbex::SymPacket& p,
                                           size_t ip_offset);

// Ethernet+IPv4 frame: EtherType 0x0800 at `eth_offset` plus the structural
// clauses above with the IP header at `eth_offset + 14`.
bv::ExprRef wellformed_ipv4(const symbex::SymPacket& p,
                            size_t eth_offset = 0);

// As above plus valid header checksum.
bv::ExprRef wellformed_ipv4_checksummed(const symbex::SymPacket& p,
                                        size_t eth_offset = 0);

// Destination address equality, IP header at `ip_offset`.
bv::ExprRef dst_ip_is(const symbex::SymPacket& p, uint32_t addr,
                      size_t ip_offset);

// Conjunction helper.
inline bv::ExprRef both(const bv::ExprRef& a, const bv::ExprRef& b) {
  return bv::mk_land(a, b);
}

}  // namespace vsd::verify
