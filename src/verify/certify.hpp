// The app-market certifier (§2, third use case): before an operator drops a
// third-party element into a running pipeline, certify that the upgraded
// pipeline (a) still cannot crash and (b) how much per-packet work the new
// element can add — "the maximum increase in latency ... the new element
// would introduce".
#pragma once

#include <cstdint>
#include <string>

#include "ir/ir.hpp"
#include "pipeline/pipeline.hpp"
#include "verify/decomposed.hpp"
#include "verify/report.hpp"

namespace vsd::verify {

struct CertificationReport {
  // Crash freedom of the upgraded pipeline.
  CrashFreedomReport crash;
  // Instruction bounds before and after insertion.
  InstructionBoundReport bound_before;
  InstructionBoundReport bound_after;
  // Convenience verdict: certified iff crash-free and both bounds proven.
  bool certified = false;
  // Worst-case added instructions per packet.
  uint64_t max_added_instructions = 0;
  std::string summary;  // human-readable certificate text
};

// Builds the upgraded pipeline by inserting `candidate` after position
// `insert_after` of a linear pipeline description, re-verifies, and
// reports. `base_config` / element list use the registry config syntax.
CertificationReport certify_element(DecomposedVerifier& verifier,
                                    const std::string& base_config,
                                    const std::string& candidate_config,
                                    size_t insert_after);

}  // namespace vsd::verify
