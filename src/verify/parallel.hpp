// Work-queue scheduler for the parallel verification engine.
//
// Decomposition makes the paper's two verification steps embarrassingly
// parallel: Step 1 summarizes each element independently, and Step 2
// decides each stitched path constraint independently. This scheduler fans
// both out over N worker threads (plain std::thread + mutex/condvar, no
// external dependencies). Tasks may submit further tasks — the composed-
// path walk forks a subtree task per feasible Emit segment — and
// wait_idle() returns only when the whole task tree has drained.
//
// Each task receives its worker index so callers can hand every worker its
// own solver instance and stats block; nothing in the engine shares mutable
// state across workers except the summary cache (itself thread-safe) and
// the interned expression pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsd::verify {

class WorkQueue {
 public:
  // A unit of work; `worker` is this task's worker index in [0, jobs()).
  using Task = std::function<void(size_t worker)>;

  // Spawns `jobs` workers (at least 1).
  explicit WorkQueue(size_t jobs);
  ~WorkQueue();

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Enqueues a task. Safe to call from within a running task.
  void submit(Task task);

  // Blocks until every submitted task (including tasks submitted by tasks)
  // has finished. Rethrows the first exception any task threw. The queue
  // remains usable for another round of submissions afterwards.
  void wait_idle();

  size_t jobs() const { return workers_.size(); }

 private:
  void worker_loop(size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task available / stop
  std::condition_variable idle_cv_;  // signals wait_idle: pending hit zero
  std::deque<Task> queue_;
  size_t pending_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

// Runs fn(i, worker) for every i in [0, n) across the queue's workers and
// waits for completion.
void parallel_for(WorkQueue& queue, size_t n,
                  const std::function<void(size_t index, size_t worker)>& fn);

}  // namespace vsd::verify
