#include "bv/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace vsd::bv {

namespace {

// Bottom-up rewriting with a memo table keyed by node identity.
class Substituter {
 public:
  explicit Substituter(const Substitution& sub) : sub_(sub) {}

  ExprRef rewrite(const ExprRef& e) {
    auto it = memo_.find(e->uid());
    if (it != memo_.end()) return it->second;
    ExprRef out = rewrite_uncached(e);
    memo_.emplace(e->uid(), out);
    return out;
  }

 private:
  ExprRef rewrite_uncached(const ExprRef& e) {
    switch (e->kind()) {
      case Kind::Const:
        return e;
      case Kind::Var: {
        auto it = sub_.find(e->var_id());
        if (it == sub_.end()) return e;
        assert(it->second->width() == e->width());
        return it->second;
      }
      default:
        break;
    }
    std::vector<ExprRef> ops;
    ops.reserve(e->num_operands());
    bool changed = false;
    for (size_t i = 0; i < e->num_operands(); ++i) {
      ExprRef r = rewrite(e->operand(i));
      changed = changed || r.get() != e->operand(i).get();
      ops.push_back(std::move(r));
    }
    if (!changed) return e;
    return rebuild(e, ops);
  }

  static ExprRef rebuild(const ExprRef& e, const std::vector<ExprRef>& ops) {
    switch (e->kind()) {
      case Kind::Not: return mk_not(ops[0]);
      case Kind::Neg: return mk_neg(ops[0]);
      case Kind::Add: return mk_add(ops[0], ops[1]);
      case Kind::Sub: return mk_sub(ops[0], ops[1]);
      case Kind::Mul: return mk_mul(ops[0], ops[1]);
      case Kind::UDiv: return mk_udiv(ops[0], ops[1]);
      case Kind::URem: return mk_urem(ops[0], ops[1]);
      case Kind::And: return mk_and(ops[0], ops[1]);
      case Kind::Or: return mk_or(ops[0], ops[1]);
      case Kind::Xor: return mk_xor(ops[0], ops[1]);
      case Kind::Shl: return mk_shl(ops[0], ops[1]);
      case Kind::LShr: return mk_lshr(ops[0], ops[1]);
      case Kind::AShr: return mk_ashr(ops[0], ops[1]);
      case Kind::Eq: return mk_eq(ops[0], ops[1]);
      case Kind::Ult: return mk_ult(ops[0], ops[1]);
      case Kind::Ule: return mk_ule(ops[0], ops[1]);
      case Kind::Slt: return mk_slt(ops[0], ops[1]);
      case Kind::Sle: return mk_sle(ops[0], ops[1]);
      case Kind::ZExt: return mk_zext(ops[0], e->width());
      case Kind::SExt: return mk_sext(ops[0], e->width());
      case Kind::Extract:
        return mk_extract(ops[0], e->extract_lo(), e->width());
      case Kind::Concat: return mk_concat(ops[0], ops[1]);
      case Kind::Ite: return mk_ite(ops[0], ops[1], ops[2]);
      case Kind::Const:
      case Kind::Var:
        break;
    }
    return e;
  }

  const Substitution& sub_;
  std::unordered_map<uint64_t, ExprRef> memo_;
};

}  // namespace

ExprRef substitute(const ExprRef& e, const Substitution& sub) {
  if (sub.empty()) return e;
  Substituter s(sub);
  return s.rewrite(e);
}

namespace {

class Evaluator {
 public:
  explicit Evaluator(const Assignment& a) : assignment_(a) {}

  uint64_t eval(const ExprRef& e) {
    auto it = memo_.find(e->uid());
    if (it != memo_.end()) return it->second;
    const uint64_t v = truncate_to_width(eval_uncached(e), e->width());
    memo_.emplace(e->uid(), v);
    return v;
  }

 private:
  uint64_t eval_uncached(const ExprRef& e) {
    const unsigned w = e->width();
    switch (e->kind()) {
      case Kind::Const: return e->value();
      case Kind::Var: {
        auto it = assignment_.find(e->var_id());
        return it == assignment_.end() ? 0 : it->second;
      }
      case Kind::Not: return ~eval(e->operand(0));
      case Kind::Neg: return -eval(e->operand(0));
      case Kind::Add: return eval(e->operand(0)) + eval(e->operand(1));
      case Kind::Sub: return eval(e->operand(0)) - eval(e->operand(1));
      case Kind::Mul: return eval(e->operand(0)) * eval(e->operand(1));
      case Kind::UDiv: {
        const uint64_t b = eval(e->operand(1));
        // SMT-LIB: bvudiv by zero yields all ones.
        return b == 0 ? ~uint64_t{0} : eval(e->operand(0)) / b;
      }
      case Kind::URem: {
        const uint64_t b = eval(e->operand(1));
        return b == 0 ? eval(e->operand(0)) : eval(e->operand(0)) % b;
      }
      case Kind::And: return eval(e->operand(0)) & eval(e->operand(1));
      case Kind::Or: return eval(e->operand(0)) | eval(e->operand(1));
      case Kind::Xor: return eval(e->operand(0)) ^ eval(e->operand(1));
      case Kind::Shl: {
        const uint64_t s = eval(e->operand(1));
        return s >= w ? 0 : eval(e->operand(0)) << s;
      }
      case Kind::LShr: {
        const uint64_t s = eval(e->operand(1));
        return s >= w ? 0 : eval(e->operand(0)) >> s;
      }
      case Kind::AShr: {
        const uint64_t s = eval(e->operand(1));
        const int64_t a = sign_extend_64(eval(e->operand(0)), w);
        if (s >= w) return a < 0 ? ~uint64_t{0} : 0;
        return static_cast<uint64_t>(a >> static_cast<int64_t>(s));
      }
      case Kind::Eq:
        return eval(e->operand(0)) == eval(e->operand(1)) ? 1 : 0;
      case Kind::Ult:
        return eval(e->operand(0)) < eval(e->operand(1)) ? 1 : 0;
      case Kind::Ule:
        return eval(e->operand(0)) <= eval(e->operand(1)) ? 1 : 0;
      case Kind::Slt: {
        const unsigned ow = e->operand(0)->width();
        return sign_extend_64(eval(e->operand(0)), ow) <
                       sign_extend_64(eval(e->operand(1)), ow)
                   ? 1
                   : 0;
      }
      case Kind::Sle: {
        const unsigned ow = e->operand(0)->width();
        return sign_extend_64(eval(e->operand(0)), ow) <=
                       sign_extend_64(eval(e->operand(1)), ow)
                   ? 1
                   : 0;
      }
      case Kind::ZExt: return eval(e->operand(0));
      case Kind::SExt:
        return static_cast<uint64_t>(
            sign_extend_64(eval(e->operand(0)), e->operand(0)->width()));
      case Kind::Extract:
        return eval(e->operand(0)) >> e->extract_lo();
      case Kind::Concat:
        return (eval(e->operand(0)) << e->operand(1)->width()) |
               eval(e->operand(1));
      case Kind::Ite:
        return eval(e->operand(0)) != 0 ? eval(e->operand(1))
                                        : eval(e->operand(2));
    }
    return 0;
  }

  const Assignment& assignment_;
  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace

uint64_t evaluate(const ExprRef& e, const Assignment& assignment) {
  Evaluator ev(assignment);
  return ev.eval(e);
}

std::vector<ExprRef> free_variables(const ExprRef& e) {
  std::vector<ExprRef> out;
  std::unordered_map<uint64_t, bool> seen;
  std::vector<ExprRef> stack{e};
  std::unordered_map<uint64_t, bool> visited;
  while (!stack.empty()) {
    ExprRef cur = stack.back();
    stack.pop_back();
    if (visited.count(cur->uid()) != 0) continue;
    visited.emplace(cur->uid(), true);
    if (cur->kind() == Kind::Var) {
      if (seen.count(cur->var_id()) == 0) {
        seen.emplace(cur->var_id(), true);
        out.push_back(cur);
      }
      continue;
    }
    for (size_t i = 0; i < cur->num_operands(); ++i) {
      stack.push_back(cur->operand(i));
    }
  }
  // first-occurrence order: the stack walk is LIFO; re-sort by var id for a
  // deterministic order instead (ids are allocation-ordered).
  std::sort(out.begin(), out.end(), [](const ExprRef& a, const ExprRef& b) {
    return a->var_id() < b->var_id();
  });
  return out;
}

size_t dag_size(const ExprRef& e) {
  std::unordered_map<uint64_t, bool> visited;
  std::vector<const Expr*> stack{e.get()};
  size_t n = 0;
  while (!stack.empty()) {
    const Expr* cur = stack.back();
    stack.pop_back();
    if (visited.count(cur->uid()) != 0) continue;
    visited.emplace(cur->uid(), true);
    ++n;
    for (size_t i = 0; i < cur->num_operands(); ++i) {
      stack.push_back(cur->operand(i).get());
    }
  }
  return n;
}

namespace {

uint64_t width_max(unsigned w) { return truncate_to_width(~uint64_t{0}, w); }

class IntervalAnalysis {
 public:
  Interval run(const ExprRef& e) {
    auto it = memo_.find(e->uid());
    if (it != memo_.end()) return it->second;
    Interval v = compute(e);
    // Clamp defensively to the width's range.
    const uint64_t wm = width_max(e->width());
    v.lo = std::min(v.lo, wm);
    v.hi = std::min(v.hi, wm);
    if (v.lo > v.hi) v = Interval{0, wm};
    memo_.emplace(e->uid(), v);
    return v;
  }

 private:
  Interval compute(const ExprRef& e) {
    const unsigned w = e->width();
    const uint64_t wm = width_max(w);
    const Interval top{0, wm};
    switch (e->kind()) {
      case Kind::Const:
        return {e->value(), e->value()};
      case Kind::Var:
        return top;
      case Kind::ZExt:
        return run(e->operand(0));
      case Kind::And: {
        // Result can never exceed either operand's max.
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        return {0, std::min(a.hi, b.hi)};
      }
      case Kind::Or: {
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        // hi bound: next power-of-two envelope of max(a.hi, b.hi) joined.
        uint64_t m = a.hi | b.hi;
        uint64_t envelope = m;
        envelope |= envelope >> 1; envelope |= envelope >> 2;
        envelope |= envelope >> 4; envelope |= envelope >> 8;
        envelope |= envelope >> 16; envelope |= envelope >> 32;
        return {std::max(a.lo, b.lo), std::min(envelope, wm)};
      }
      case Kind::Add: {
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        // Only precise when no wraparound is possible.
        if (a.hi <= wm - b.hi) return {a.lo + b.lo, a.hi + b.hi};
        return top;
      }
      case Kind::Sub: {
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        if (a.lo >= b.hi) return {a.lo - b.hi, a.hi - b.lo};
        return top;
      }
      case Kind::Mul: {
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        if (b.hi != 0 && a.hi <= wm / b.hi) return {a.lo * b.lo, a.hi * b.hi};
        if (b.hi == 0 || a.hi == 0) return {0, 0};
        return top;
      }
      case Kind::UDiv: {
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        if (b.lo > 0) return {a.lo / b.hi, a.hi / b.lo};
        return top;
      }
      case Kind::URem: {
        const Interval b = run(e->operand(1));
        if (b.hi > 0) return {0, b.hi - 1};
        return top;
      }
      case Kind::LShr: {
        const Interval a = run(e->operand(0));
        const Interval s = run(e->operand(1));
        if (s.is_singleton() && s.lo < w) return {a.lo >> s.lo, a.hi >> s.lo};
        return {0, a.hi};
      }
      case Kind::Shl: {
        const Interval a = run(e->operand(0));
        const Interval s = run(e->operand(1));
        if (s.is_singleton() && s.lo < w && a.hi <= (wm >> s.lo)) {
          return {a.lo << s.lo, a.hi << s.lo};
        }
        return top;
      }
      case Kind::Extract: {
        const Interval a = run(e->operand(0));
        if (e->extract_lo() == 0 && a.hi <= wm) return {a.lo, a.hi};
        return top;
      }
      case Kind::Concat: {
        const Interval hi = run(e->operand(0));
        const Interval lo = run(e->operand(1));
        const unsigned lw = e->operand(1)->width();
        return {(hi.lo << lw) | lo.lo, (hi.hi << lw) | width_max(lw)};
      }
      case Kind::Ite: {
        const Interval a = run(e->operand(1));
        const Interval b = run(e->operand(2));
        return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
      }
      case Kind::Eq:
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        // Try to decide the comparison from operand intervals.
        const Interval a = run(e->operand(0));
        const Interval b = run(e->operand(1));
        switch (e->kind()) {
          case Kind::Eq:
            if (a.hi < b.lo || b.hi < a.lo) return {0, 0};
            if (a.is_singleton() && b.is_singleton() && a.lo == b.lo)
              return {1, 1};
            break;
          case Kind::Ult:
            if (a.hi < b.lo) return {1, 1};
            if (a.lo >= b.hi) return {0, 0};
            break;
          case Kind::Ule:
            if (a.hi <= b.lo) return {1, 1};
            if (a.lo > b.hi) return {0, 0};
            break;
          default:
            break;  // signed comparisons: skip (rare in dataplane code)
        }
        return {0, 1};
      }
      default:
        return top;
    }
  }

  std::unordered_map<uint64_t, Interval> memo_;
};

}  // namespace

Interval interval_of(const ExprRef& e) {
  IntervalAnalysis a;
  return a.run(e);
}

std::optional<bool> decide_by_interval(const ExprRef& e) {
  assert(e->width() == 1);
  if (e->kind() == Kind::Not) {
    const auto inner = decide_by_interval(e->operand(0));
    if (inner) return !*inner;
    return std::nullopt;
  }
  const Interval i = interval_of(e);
  if (i.is_singleton()) return i.lo != 0;
  return std::nullopt;
}

}  // namespace vsd::bv
