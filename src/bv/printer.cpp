#include "bv/printer.hpp"

#include <sstream>

namespace vsd::bv {

namespace {

void print_rec(std::ostringstream& os, const ExprRef& e) {
  switch (e->kind()) {
    case Kind::Const: {
      os << "#x" << std::hex << e->value() << std::dec << ":" << e->width();
      return;
    }
    case Kind::Var: {
      os << (e->name().empty() ? "v" : e->name()) << "@" << e->var_id() << ":"
         << e->width();
      return;
    }
    case Kind::Extract: {
      os << "(extract[" << e->extract_lo() << ".."
         << (e->extract_lo() + e->width() - 1) << "] ";
      print_rec(os, e->operand(0));
      os << ")";
      return;
    }
    case Kind::ZExt:
    case Kind::SExt: {
      os << "(" << kind_name(e->kind()) << e->width() << " ";
      print_rec(os, e->operand(0));
      os << ")";
      return;
    }
    default:
      break;
  }
  os << "(" << kind_name(e->kind());
  for (size_t i = 0; i < e->num_operands(); ++i) {
    os << " ";
    print_rec(os, e->operand(i));
  }
  os << ")";
}

}  // namespace

std::string to_string(const ExprRef& e) {
  std::ostringstream os;
  print_rec(os, e);
  return os.str();
}

std::string to_string_compact(const ExprRef& e, size_t max_chars) {
  std::string s = to_string(e);
  if (s.size() > max_chars) {
    s.resize(max_chars);
    s += "...";
  }
  return s;
}

}  // namespace vsd::bv
