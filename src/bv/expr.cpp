#include "bv/expr.hpp"

#include <cassert>
#include <mutex>
#include <unordered_map>

namespace vsd::bv {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Const: return "const";
    case Kind::Var: return "var";
    case Kind::Not: return "not";
    case Kind::Neg: return "neg";
    case Kind::Add: return "add";
    case Kind::Sub: return "sub";
    case Kind::Mul: return "mul";
    case Kind::UDiv: return "udiv";
    case Kind::URem: return "urem";
    case Kind::And: return "and";
    case Kind::Or: return "or";
    case Kind::Xor: return "xor";
    case Kind::Shl: return "shl";
    case Kind::LShr: return "lshr";
    case Kind::AShr: return "ashr";
    case Kind::Eq: return "eq";
    case Kind::Ult: return "ult";
    case Kind::Ule: return "ule";
    case Kind::Slt: return "slt";
    case Kind::Sle: return "sle";
    case Kind::ZExt: return "zext";
    case Kind::SExt: return "sext";
    case Kind::Extract: return "extract";
    case Kind::Concat: return "concat";
    case Kind::Ite: return "ite";
  }
  return "?";
}

bool is_comparison(Kind k) {
  switch (k) {
    case Kind::Eq:
    case Kind::Ult:
    case Kind::Ule:
    case Kind::Slt:
    case Kind::Sle:
      return true;
    default:
      return false;
  }
}

uint64_t truncate_to_width(uint64_t v, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return v;
  return v & ((uint64_t{1} << width) - 1);
}

int64_t sign_extend_64(uint64_t v, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<int64_t>(v);
  const uint64_t sign_bit = uint64_t{1} << (width - 1);
  const uint64_t masked = truncate_to_width(v, width);
  if (masked & sign_bit) {
    return static_cast<int64_t>(masked | ~((uint64_t{1} << width) - 1));
  }
  return static_cast<int64_t>(masked);
}

Expr::Expr(Kind kind, unsigned width, uint64_t value, unsigned aux,
           std::string name, std::vector<ExprRef> ops, size_t hash,
           uint64_t uid)
    : kind_(kind),
      width_(width),
      value_(value),
      aux_(aux),
      name_(std::move(name)),
      ops_(std::move(ops)),
      hash_(hash),
      uid_(uid) {}

namespace {

// Structural key used for interning. Variables are never interned (each
// mk_var call mints a distinct symbol), so the key covers everything else.
struct NodeKey {
  Kind kind;
  unsigned width;
  uint64_t value;
  unsigned aux;
  std::vector<const Expr*> ops;

  bool operator==(const NodeKey& o) const {
    return kind == o.kind && width == o.width && value == o.value &&
           aux == o.aux && ops == o.ops;
  }
};

size_t hash_combine(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

struct NodeKeyHash {
  size_t operator()(const NodeKey& k) const {
    size_t h = hash_combine(static_cast<size_t>(k.kind),
                            static_cast<size_t>(k.width));
    h = hash_combine(h, static_cast<size_t>(k.value));
    h = hash_combine(h, static_cast<size_t>(k.aux));
    for (const Expr* e : k.ops) {
      h = hash_combine(h, e->hash());
    }
    return h;
  }
};

// Process-wide interner. The dataplane verifier is single-threaded per
// verification task; the mutex makes the pool safe if benches parallelize.
class ExprPoolImpl {
 public:
  ExprRef intern(Kind kind, unsigned width, uint64_t value, unsigned aux,
                 std::vector<ExprRef> ops) {
    NodeKey key{kind, width, value, aux, {}};
    key.ops.reserve(ops.size());
    for (const auto& o : ops) key.ops.push_back(o.get());
    const size_t h = NodeKeyHash{}(key);

    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key);
    if (it != table_.end()) return it->second;
    auto node = std::shared_ptr<const Expr>(
        new Expr(kind, width, value, aux, "", std::move(ops), h, next_uid_++));
    table_.emplace(std::move(key), node);
    return node;
  }

  ExprRef fresh_var(std::string name, unsigned width) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t id = next_var_id_++;
    const size_t h =
        hash_combine(hash_combine(static_cast<size_t>(Kind::Var), width),
                     static_cast<size_t>(id));
    return std::shared_ptr<const Expr>(new Expr(
        Kind::Var, width, id, 0, std::move(name), {}, h, next_uid_++));
  }

  size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

 private:
  std::mutex mu_;
  std::unordered_map<NodeKey, ExprRef, NodeKeyHash> table_;
  uint64_t next_var_id_ = 1;
  uint64_t next_uid_ = 1;
};

ExprPoolImpl& pool() {
  static ExprPoolImpl* p = new ExprPoolImpl();  // intentionally immortal
  return *p;
}

ExprRef intern(Kind kind, unsigned width, std::vector<ExprRef> ops,
               uint64_t value = 0, unsigned aux = 0) {
  return pool().intern(kind, width, value, aux, std::move(ops));
}

bool same(const ExprRef& a, const ExprRef& b) { return a.get() == b.get(); }

uint64_t all_ones(unsigned width) { return truncate_to_width(~uint64_t{0}, width); }

}  // namespace

size_t interned_node_count() { return pool().size(); }

ExprRef mk_const(uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  return intern(Kind::Const, width, {}, truncate_to_width(value, width));
}

ExprRef mk_bool(bool b) { return mk_const(b ? 1 : 0, 1); }

ExprRef mk_var(std::string name, unsigned width) {
  assert(width >= 1 && width <= 64);
  return pool().fresh_var(std::move(name), width);
}

ExprRef mk_not(const ExprRef& a) {
  if (a->is_const()) return mk_const(~a->value(), a->width());
  if (a->kind() == Kind::Not) return a->operand(0);
  // De Morgan on width-1 keeps boolean structure shallow for the solver.
  if (a->width() == 1 && a->kind() == Kind::Ite) {
    return mk_ite(a->operand(0), mk_not(a->operand(1)), mk_not(a->operand(2)));
  }
  return intern(Kind::Not, a->width(), {a});
}

ExprRef mk_neg(const ExprRef& a) {
  if (a->is_const()) return mk_const(-a->value(), a->width());
  if (a->kind() == Kind::Neg) return a->operand(0);
  return intern(Kind::Neg, a->width(), {a});
}

ExprRef mk_add(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() + b->value(), a->width());
  if (a->is_const_value(0)) return b;
  if (b->is_const_value(0)) return a;
  // Canonicalize constants to the right so (x+c1)+c2 folds.
  if (a->is_const() && !b->is_const()) return mk_add(b, a);
  if (b->is_const() && a->kind() == Kind::Add && a->operand(1)->is_const()) {
    return mk_add(a->operand(0),
                  mk_const(a->operand(1)->value() + b->value(), a->width()));
  }
  return intern(Kind::Add, a->width(), {a, b});
}

ExprRef mk_sub(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() - b->value(), a->width());
  if (b->is_const_value(0)) return a;
  if (same(a, b)) return mk_const(0, a->width());
  if (b->is_const()) return mk_add(a, mk_const(-b->value(), a->width()));
  return intern(Kind::Sub, a->width(), {a, b});
}

ExprRef mk_mul(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() * b->value(), a->width());
  if (a->is_const_value(0) || b->is_const_value(0))
    return mk_const(0, a->width());
  if (a->is_const_value(1)) return b;
  if (b->is_const_value(1)) return a;
  if (a->is_const() && !b->is_const()) return mk_mul(b, a);
  return intern(Kind::Mul, a->width(), {a, b});
}

ExprRef mk_udiv(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const() && b->value() != 0)
    return mk_const(a->value() / b->value(), a->width());
  if (b->is_const_value(1)) return a;
  return intern(Kind::UDiv, a->width(), {a, b});
}

ExprRef mk_urem(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const() && b->value() != 0)
    return mk_const(a->value() % b->value(), a->width());
  if (b->is_const_value(1)) return mk_const(0, a->width());
  return intern(Kind::URem, a->width(), {a, b});
}

ExprRef mk_and(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() & b->value(), a->width());
  if (a->is_const_value(0) || b->is_const_value(0))
    return mk_const(0, a->width());
  if (a->is_const_value(all_ones(a->width()))) return b;
  if (b->is_const_value(all_ones(a->width()))) return a;
  if (same(a, b)) return a;
  return intern(Kind::And, a->width(), {a, b});
}

ExprRef mk_or(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() | b->value(), a->width());
  if (a->is_const_value(0)) return b;
  if (b->is_const_value(0)) return a;
  if (a->is_const_value(all_ones(a->width()))) return a;
  if (b->is_const_value(all_ones(a->width()))) return b;
  if (same(a, b)) return a;
  return intern(Kind::Or, a->width(), {a, b});
}

ExprRef mk_xor(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const())
    return mk_const(a->value() ^ b->value(), a->width());
  if (a->is_const_value(0)) return b;
  if (b->is_const_value(0)) return a;
  if (same(a, b)) return mk_const(0, a->width());
  if (a->is_const_value(all_ones(a->width()))) return mk_not(b);
  if (b->is_const_value(all_ones(a->width()))) return mk_not(a);
  return intern(Kind::Xor, a->width(), {a, b});
}

namespace {
ExprRef mk_shift(Kind kind, const ExprRef& a, const ExprRef& b) {
  const unsigned w = a->width();
  if (b->is_const()) {
    const uint64_t s = b->value();
    if (s == 0) return a;
    if (a->is_const()) {
      if (s >= w) {
        if (kind == Kind::AShr) {
          const bool neg = sign_extend_64(a->value(), w) < 0;
          return mk_const(neg ? all_ones(w) : 0, w);
        }
        return mk_const(0, w);
      }
      switch (kind) {
        case Kind::Shl: return mk_const(a->value() << s, w);
        case Kind::LShr: return mk_const(truncate_to_width(a->value(), w) >> s, w);
        case Kind::AShr:
          return mk_const(
              static_cast<uint64_t>(sign_extend_64(a->value(), w) >>
                                    static_cast<int64_t>(s)),
              w);
        default: break;
      }
    }
    if (s >= w && kind != Kind::AShr) return mk_const(0, w);
  }
  return intern(kind, w, {a, b});
}
}  // namespace

ExprRef mk_shl(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  return mk_shift(Kind::Shl, a, b);
}
ExprRef mk_lshr(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  return mk_shift(Kind::LShr, a, b);
}
ExprRef mk_ashr(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  return mk_shift(Kind::AShr, a, b);
}

ExprRef mk_eq(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const()) return mk_bool(a->value() == b->value());
  if (same(a, b)) return mk_bool(true);
  if (a->width() == 1) {
    // Width-1 equality is xnor; normalize toward not/identity forms.
    if (a->is_true()) return b;
    if (a->is_false()) return mk_not(b);
    if (b->is_true()) return a;
    if (b->is_false()) return mk_not(a);
  }
  // eq(ite(c, k1, k2), k) with distinct constants folds to c or !c.
  const ExprRef* ite = nullptr;
  const ExprRef* k = nullptr;
  if (a->kind() == Kind::Ite && b->is_const()) { ite = &a; k = &b; }
  else if (b->kind() == Kind::Ite && a->is_const()) { ite = &b; k = &a; }
  if (ite != nullptr) {
    const ExprRef& t = (*ite)->operand(1);
    const ExprRef& f = (*ite)->operand(2);
    if (t->is_const() && f->is_const()) {
      const bool t_hit = t->value() == (*k)->value();
      const bool f_hit = f->value() == (*k)->value();
      if (t_hit && f_hit) return mk_bool(true);
      if (t_hit) return (*ite)->operand(0);
      if (f_hit) return mk_not((*ite)->operand(0));
      return mk_bool(false);
    }
  }
  // Canonicalize constant to the right for interning stability.
  if (a->is_const() && !b->is_const()) return intern(Kind::Eq, 1, {b, a});
  return intern(Kind::Eq, 1, {a, b});
}

ExprRef mk_ne(const ExprRef& a, const ExprRef& b) { return mk_not(mk_eq(a, b)); }

ExprRef mk_ult(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const()) return mk_bool(a->value() < b->value());
  if (same(a, b)) return mk_bool(false);
  if (b->is_const_value(0)) return mk_bool(false);        // x < 0 (unsigned)
  if (a->is_const_value(all_ones(a->width()))) return mk_bool(false);
  if (b->is_const_value(1)) return mk_eq(a, mk_const(0, a->width()));
  return intern(Kind::Ult, 1, {a, b});
}

ExprRef mk_ule(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const()) return mk_bool(a->value() <= b->value());
  if (same(a, b)) return mk_bool(true);
  if (a->is_const_value(0)) return mk_bool(true);
  if (b->is_const_value(all_ones(b->width()))) return mk_bool(true);
  return intern(Kind::Ule, 1, {a, b});
}

ExprRef mk_ugt(const ExprRef& a, const ExprRef& b) { return mk_ult(b, a); }
ExprRef mk_uge(const ExprRef& a, const ExprRef& b) { return mk_ule(b, a); }

ExprRef mk_slt(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const()) {
    return mk_bool(sign_extend_64(a->value(), a->width()) <
                   sign_extend_64(b->value(), b->width()));
  }
  if (same(a, b)) return mk_bool(false);
  // zext(x) is always non-negative: zext(x) < 0 is false, 0 <= zext(x) true.
  if (a->kind() == Kind::ZExt && a->operand(0)->width() < a->width() &&
      b->is_const() && sign_extend_64(b->value(), b->width()) <= 0) {
    if (sign_extend_64(b->value(), b->width()) == 0) return mk_bool(false);
    return mk_bool(false);
  }
  return intern(Kind::Slt, 1, {a, b});
}

ExprRef mk_sle(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == b->width());
  if (a->is_const() && b->is_const()) {
    return mk_bool(sign_extend_64(a->value(), a->width()) <=
                   sign_extend_64(b->value(), b->width()));
  }
  if (same(a, b)) return mk_bool(true);
  return intern(Kind::Sle, 1, {a, b});
}

ExprRef mk_sgt(const ExprRef& a, const ExprRef& b) { return mk_slt(b, a); }
ExprRef mk_sge(const ExprRef& a, const ExprRef& b) { return mk_sle(b, a); }

ExprRef mk_zext(const ExprRef& a, unsigned width) {
  assert(width >= a->width() && width <= 64);
  if (width == a->width()) return a;
  if (a->is_const()) return mk_const(a->value(), width);
  if (a->kind() == Kind::ZExt) return mk_zext(a->operand(0), width);
  return intern(Kind::ZExt, width, {a});
}

ExprRef mk_sext(const ExprRef& a, unsigned width) {
  assert(width >= a->width() && width <= 64);
  if (width == a->width()) return a;
  if (a->is_const()) {
    return mk_const(static_cast<uint64_t>(sign_extend_64(a->value(), a->width())),
                    width);
  }
  return intern(Kind::SExt, width, {a});
}

ExprRef mk_extract(const ExprRef& a, unsigned lo, unsigned width) {
  assert(width >= 1);
  assert(lo + width <= a->width());
  if (lo == 0 && width == a->width()) return a;
  if (a->is_const()) {
    return mk_const(truncate_to_width(a->value(), a->width()) >> lo, width);
  }
  if (a->kind() == Kind::Extract) {
    return mk_extract(a->operand(0), a->extract_lo() + lo, width);
  }
  if (a->kind() == Kind::ZExt) {
    const ExprRef& inner = a->operand(0);
    if (lo >= inner->width()) return mk_const(0, width);
    if (lo + width <= inner->width()) return mk_extract(inner, lo, width);
  }
  if (a->kind() == Kind::Concat) {
    const ExprRef& hi = a->operand(0);
    const ExprRef& lo_op = a->operand(1);
    if (lo + width <= lo_op->width()) return mk_extract(lo_op, lo, width);
    if (lo >= lo_op->width())
      return mk_extract(hi, lo - lo_op->width(), width);
  }
  return intern(Kind::Extract, width, {a}, 0, lo);
}

ExprRef mk_concat(const ExprRef& hi, const ExprRef& lo) {
  const unsigned w = hi->width() + lo->width();
  assert(w <= 64);
  if (hi->is_const() && lo->is_const()) {
    return mk_const((hi->value() << lo->width()) |
                        truncate_to_width(lo->value(), lo->width()),
                    w);
  }
  if (hi->is_const_value(0)) return mk_zext(lo, w);
  // concat(extract(x, k+m, n), extract(x, k, m)) == extract(x, k, n+m)
  if (hi->kind() == Kind::Extract && lo->kind() == Kind::Extract &&
      hi->operand(0).get() == lo->operand(0).get() &&
      hi->extract_lo() == lo->extract_lo() + lo->width()) {
    return mk_extract(hi->operand(0), lo->extract_lo(), w);
  }
  return intern(Kind::Concat, w, {hi, lo});
}

ExprRef mk_ite(const ExprRef& cond, const ExprRef& a, const ExprRef& b) {
  assert(cond->width() == 1);
  assert(a->width() == b->width());
  if (cond->is_true()) return a;
  if (cond->is_false()) return b;
  if (a.get() == b.get()) return a;
  if (a->width() == 1) {
    if (a->is_true() && b->is_false()) return cond;
    if (a->is_false() && b->is_true()) return mk_not(cond);
    if (a->is_false()) return mk_land(mk_lnot(cond), b);
    if (b->is_false()) return mk_land(cond, a);
    if (a->is_true()) return mk_lor(cond, b);
    if (b->is_true()) return mk_lor(mk_lnot(cond), a);
  }
  if (cond->kind() == Kind::Not) return mk_ite(cond->operand(0), b, a);
  return intern(Kind::Ite, a->width(), {cond, a, b});
}

ExprRef mk_land(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == 1 && b->width() == 1);
  // Contradiction detection: a && !a.
  if ((a->kind() == Kind::Not && a->operand(0).get() == b.get()) ||
      (b->kind() == Kind::Not && b->operand(0).get() == a.get())) {
    return mk_bool(false);
  }
  return mk_and(a, b);
}

ExprRef mk_lor(const ExprRef& a, const ExprRef& b) {
  assert(a->width() == 1 && b->width() == 1);
  if ((a->kind() == Kind::Not && a->operand(0).get() == b.get()) ||
      (b->kind() == Kind::Not && b->operand(0).get() == a.get())) {
    return mk_bool(true);
  }
  return mk_or(a, b);
}

ExprRef mk_lnot(const ExprRef& a) {
  assert(a->width() == 1);
  return mk_not(a);
}

ExprRef mk_land_all(std::span<const ExprRef> conjuncts) {
  ExprRef acc = mk_bool(true);
  for (const auto& c : conjuncts) {
    acc = mk_land(acc, c);
    if (acc->is_false()) return acc;
  }
  return acc;
}

}  // namespace vsd::bv
