// Human-readable printing of bv expressions, used in diagnostics,
// counterexample reports, and golden tests. The syntax is SMT-LIB-flavoured
// prefix notation: (add (var in8 w8) #x01).
#pragma once

#include <string>

#include "bv/expr.hpp"

namespace vsd::bv {

// Renders the expression as a prefix-notation string. Shared subtrees are
// printed in full (no let-binding); callers printing huge DAGs should prefer
// to_string_compact.
std::string to_string(const ExprRef& e);

// Like to_string but truncates the output at `max_chars` with an ellipsis,
// for logging large path constraints.
std::string to_string_compact(const ExprRef& e, size_t max_chars = 256);

}  // namespace vsd::bv
