// Structural analyses over bv expressions: substitution, concrete
// evaluation, free-variable collection, and unsigned interval bounds.
//
// Substitution is the workhorse of pipeline composition (Step 2 of the
// paper's verification process): an element's segment constraint C(in) is
// rebased onto the previous element's symbolic output by substituting each
// input variable with the corresponding output expression.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bv/expr.hpp"

namespace vsd::bv {

// Maps variable ids to replacement expressions (must match widths).
using Substitution = std::unordered_map<uint64_t, ExprRef>;

// Returns `e` with every Var whose id appears in `sub` replaced by the mapped
// expression; results are re-folded bottom-up so stitched constraints often
// collapse to constants without any solver involvement.
ExprRef substitute(const ExprRef& e, const Substitution& sub);

// Maps variable ids to concrete values for evaluation.
using Assignment = std::unordered_map<uint64_t, uint64_t>;

// Evaluates `e` under `assignment`. Unassigned variables evaluate to 0
// (matching the solver's model completion). Division by zero evaluates to
// all-ones / identity per SMT-LIB bv semantics.
uint64_t evaluate(const ExprRef& e, const Assignment& assignment);

// Collects the distinct free variables of `e` in first-occurrence order.
std::vector<ExprRef> free_variables(const ExprRef& e);

// Counts distinct DAG nodes reachable from `e` (diagnostic).
size_t dag_size(const ExprRef& e);

// Unsigned interval [lo, hi] over the expression's width.
struct Interval {
  uint64_t lo = 0;
  uint64_t hi = ~uint64_t{0};

  bool is_singleton() const { return lo == hi; }
  bool contains(uint64_t v) const { return v >= lo && v <= hi; }
};

// Cheap unsigned range analysis. Sound: the expression's value always lies
// in the returned interval. Used as a pre-pass so comparisons with provably
// disjoint ranges fold to constants before SAT is attempted.
Interval interval_of(const ExprRef& e);

// Attempts to decide a width-1 expression by interval reasoning alone.
// Returns nullopt when intervals are inconclusive.
std::optional<bool> decide_by_interval(const ExprRef& e);

}  // namespace vsd::bv
