// Normalization / rewrite pass over the expression DAG, run by the solver
// before bit-blasting (query-avoidance layer (a)).
//
// The mk_* factories already fold constants and apply local rewrites at
// construction time; this pass adds the rules that only pay off on *query*
// roots — mostly shapes produced by Step-2 substitution, where a composed
// constraint contains patterns no single factory call ever saw:
//
//   - comparison canonicalization: Ule against a constant becomes strict
//     Ult (and Not over any inequality flips it), so syntactic variants of
//     the same predicate intern to one node and hit the per-uid result
//     cache / blast cache;
//   - constant motion through Add/Xor/Not/Neg/ZExt/SExt/Concat on one side
//     of an equality, so `concat(a,b) == c` splits into independent
//     byte-level equalities (feeding the interval layer and independence
//     slicing);
//   - redundant extract/concat collapse beyond the factories: Extract
//     pushed through bitwise And/Or/Xor/Not narrows the blasted cone;
//   - And-spine flattening with duplicate-conjunct elimination (stitched
//     constraints repeat well-formedness conjuncts per element).
//
// Every rule is equivalence-preserving (hence equisatisfiable). In debug
// builds each changed node is checked against the original on a set of
// assignments derived deterministically from the node's structural hash.
//
// Rewriting never introduces variables and the rewritten constraint is used
// for *verdicts* only — Sat models are still derived from the original
// expression (see solver.cpp), which keeps counterexample bytes identical
// whether the pass is on or off.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "bv/expr.hpp"

namespace vsd::bv {

struct RewriteStats {
  uint64_t nodes_rewritten = 0;  // nodes whose rewritten form differs
  uint64_t rules_applied = 0;    // individual rule firings
};

// Memoizing rewriter: results are cached per node uid, so re-rewriting the
// shared prefix of a stitched query group costs one traversal total. The
// memo is capped; exceeding the cap clears it (same spirit as the solver's
// FIFO result cache).
class Rewriter {
 public:
  // Returns an equivalent, normalized expression (possibly `e` itself).
  ExprRef rewrite(const ExprRef& e);

  const RewriteStats& stats() const { return stats_; }
  void clear();

 private:
  ExprRef rewrite_node(const ExprRef& e);
  ExprRef rebuild(const ExprRef& e, const std::vector<ExprRef>& ops);
  ExprRef apply_rules(const ExprRef& e);
  ExprRef flatten_spine(const ExprRef& e);

  std::unordered_map<uint64_t, ExprRef> memo_;
  RewriteStats stats_;
  static constexpr size_t kMemoCap = size_t{1} << 17;
};

// One-shot convenience (fresh memo).
ExprRef rewrite(const ExprRef& e);

}  // namespace vsd::bv
