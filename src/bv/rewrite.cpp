#include "bv/rewrite.hpp"

#include <cassert>
#include <vector>

#include "bv/analysis.hpp"

namespace vsd::bv {

namespace {

uint64_t width_mask(unsigned w) { return truncate_to_width(~uint64_t{0}, w); }

#ifndef NDEBUG
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Debug-build equisatisfiability self-check: the rules below are all
// equivalence-preserving, so the original and rewritten node must agree on
// any assignment. Sample a handful of assignments derived deterministically
// from the original's structural hash (no global RNG: rewriting stays
// reproducible across runs and job counts).
void check_equivalent(const ExprRef& orig, const ExprRef& rewritten) {
  const uint64_t seed = static_cast<uint64_t>(orig->hash());
  for (uint64_t round = 0; round < 4; ++round) {
    Assignment asg;
    for (const ExprRef& v : free_variables(orig)) {
      asg[v->var_id()] = truncate_to_width(
          splitmix64(seed ^ (round * 0x100000001b3ULL) ^ v->var_id()),
          v->width());
    }
    assert(evaluate(orig, asg) == evaluate(rewritten, asg) &&
           "rewrite rule changed semantics");
  }
}
#endif

bool is_bitwise(Kind k) {
  return k == Kind::And || k == Kind::Or || k == Kind::Xor;
}

ExprRef mk_bitwise(Kind k, const ExprRef& a, const ExprRef& b) {
  switch (k) {
    case Kind::And: return mk_and(a, b);
    case Kind::Or: return mk_or(a, b);
    case Kind::Xor: return mk_xor(a, b);
    default: assert(false); return a;
  }
}

uint64_t apply_bitwise(Kind k, uint64_t a, uint64_t b) {
  switch (k) {
    case Kind::And: return a & b;
    case Kind::Or: return a | b;
    case Kind::Xor: return a ^ b;
    default: assert(false); return 0;
  }
}

}  // namespace

ExprRef Rewriter::rewrite(const ExprRef& e) {
  ExprRef out = rewrite_node(e);
  // Query roots are conjunctions: flatten the And-spine and drop duplicate
  // conjuncts (stitching repeats well-formedness predicates per element).
  if (out->width() == 1 && out->kind() == Kind::And) {
    out = flatten_spine(out);
  }
#ifndef NDEBUG
  if (out.get() != e.get()) check_equivalent(e, out);
#endif
  return out;
}

void Rewriter::clear() { memo_.clear(); }

ExprRef Rewriter::flatten_spine(const ExprRef& e) {
  std::vector<ExprRef> conjuncts;
  // Left-to-right spine order: push right child first.
  std::vector<ExprRef> ordered;
  {
    std::vector<ExprRef> work{e};
    while (!work.empty()) {
      ExprRef cur = std::move(work.back());
      work.pop_back();
      if (cur->kind() == Kind::And && cur->width() == 1) {
        work.push_back(cur->operand(1));
        work.push_back(cur->operand(0));
      } else {
        ordered.push_back(std::move(cur));
      }
    }
  }
  std::unordered_map<uint64_t, bool> seen;
  bool changed = false;
  for (ExprRef& c : ordered) {
    if (c->is_false()) return mk_bool(false);
    if (c->is_true() || !seen.emplace(c->uid(), true).second) {
      changed = true;  // dropped
      continue;
    }
    conjuncts.push_back(std::move(c));
  }
  if (!changed) return e;
  ++stats_.rules_applied;
  return mk_land_all(conjuncts);
}

ExprRef Rewriter::rewrite_node(const ExprRef& e) {
  if (e->kind() == Kind::Const || e->kind() == Kind::Var) return e;
  auto it = memo_.find(e->uid());
  if (it != memo_.end()) return it->second;

  std::vector<ExprRef> ops;
  ops.reserve(e->num_operands());
  bool changed = false;
  for (size_t i = 0; i < e->num_operands(); ++i) {
    ExprRef r = rewrite_node(e->operand(i));
    changed = changed || r.get() != e->operand(i).get();
    ops.push_back(std::move(r));
  }
  ExprRef cur = changed ? rebuild(e, ops) : e;
  // Rules can expose further rules (Ule -> Ult -> through-zext); iterate to
  // a local fixpoint. Every rule strictly shrinks a measure, so the bound
  // is a backstop, not a budget.
  for (int round = 0; round < 8; ++round) {
    ExprRef next = apply_rules(cur);
    if (next.get() == cur.get()) break;
    ++stats_.rules_applied;
    cur = next;
  }
  if (cur.get() != e.get()) {
    ++stats_.nodes_rewritten;
#ifndef NDEBUG
    check_equivalent(e, cur);
#endif
  }
  if (memo_.size() >= kMemoCap) memo_.clear();
  memo_.emplace(e->uid(), cur);
  // Outputs are fixpoints: rewriting a rewritten node is the identity.
  memo_.emplace(cur->uid(), cur);
  return cur;
}

ExprRef Rewriter::rebuild(const ExprRef& e, const std::vector<ExprRef>& ops) {
  switch (e->kind()) {
    case Kind::Not: return mk_not(ops[0]);
    case Kind::Neg: return mk_neg(ops[0]);
    case Kind::Add: return mk_add(ops[0], ops[1]);
    case Kind::Sub: return mk_sub(ops[0], ops[1]);
    case Kind::Mul: return mk_mul(ops[0], ops[1]);
    case Kind::UDiv: return mk_udiv(ops[0], ops[1]);
    case Kind::URem: return mk_urem(ops[0], ops[1]);
    case Kind::And: return mk_and(ops[0], ops[1]);
    case Kind::Or: return mk_or(ops[0], ops[1]);
    case Kind::Xor: return mk_xor(ops[0], ops[1]);
    case Kind::Shl: return mk_shl(ops[0], ops[1]);
    case Kind::LShr: return mk_lshr(ops[0], ops[1]);
    case Kind::AShr: return mk_ashr(ops[0], ops[1]);
    case Kind::Eq: return mk_eq(ops[0], ops[1]);
    case Kind::Ult: return mk_ult(ops[0], ops[1]);
    case Kind::Ule: return mk_ule(ops[0], ops[1]);
    case Kind::Slt: return mk_slt(ops[0], ops[1]);
    case Kind::Sle: return mk_sle(ops[0], ops[1]);
    case Kind::ZExt: return mk_zext(ops[0], e->width());
    case Kind::SExt: return mk_sext(ops[0], e->width());
    case Kind::Extract: return mk_extract(ops[0], e->extract_lo(), e->width());
    case Kind::Concat: return mk_concat(ops[0], ops[1]);
    case Kind::Ite: return mk_ite(ops[0], ops[1], ops[2]);
    case Kind::Const:
    case Kind::Var:
      break;
  }
  return e;
}

// One top-level rule application on a node whose operands are already
// normalized. Returns the input unchanged when no rule matches.
ExprRef Rewriter::apply_rules(const ExprRef& e) {
  const Kind k = e->kind();

  // --- comparison canonicalization -----------------------------------------
  // Not over an inequality flips it: variants of the same predicate intern
  // to one node, so caches keyed by uid see one query instead of two.
  if (k == Kind::Not && e->width() == 1) {
    const ExprRef& a = e->operand(0);
    switch (a->kind()) {
      case Kind::Ult: return mk_ule(a->operand(1), a->operand(0));
      case Kind::Ule: return mk_ult(a->operand(1), a->operand(0));
      case Kind::Slt: return mk_sle(a->operand(1), a->operand(0));
      case Kind::Sle: return mk_slt(a->operand(1), a->operand(0));
      default: break;
    }
    return e;
  }

  // Non-strict against a constant becomes strict (one canonical form).
  if (k == Kind::Ule) {
    const ExprRef& a = e->operand(0);
    const ExprRef& b = e->operand(1);
    const unsigned w = a->width();
    if (b->is_const() && b->value() < width_mask(w)) {
      return mk_ult(a, mk_const(b->value() + 1, w));
    }
    if (a->is_const() && a->value() > 0) {
      return mk_ult(mk_const(a->value() - 1, w), b);
    }
    return e;
  }

  // Inequality through zero-extension against a constant narrows the cone.
  if (k == Kind::Ult) {
    const ExprRef& a = e->operand(0);
    const ExprRef& b = e->operand(1);
    if (a->kind() == Kind::ZExt && b->is_const()) {
      const ExprRef& x = a->operand(0);
      const uint64_t xmax = width_mask(x->width());
      if (b->value() > xmax) return mk_bool(true);
      return mk_ult(x, mk_const(b->value(), x->width()));
    }
    if (b->kind() == Kind::ZExt && a->is_const()) {
      const ExprRef& x = b->operand(0);
      const uint64_t xmax = width_mask(x->width());
      if (a->value() >= xmax) return mk_bool(false);
      return mk_ult(mk_const(a->value(), x->width()), x);
    }
    return e;
  }

  // --- constant motion through one side of an equality ---------------------
  if (k == Kind::Eq && e->operand(1)->is_const()) {
    const ExprRef& a = e->operand(0);
    const uint64_t c = e->operand(1)->value();
    const unsigned w = a->width();
    switch (a->kind()) {
      case Kind::Add:
        // mk_add canonicalizes a constant addend to the right.
        if (a->operand(1)->is_const()) {
          return mk_eq(a->operand(0),
                       mk_const(truncate_to_width(c - a->operand(1)->value(), w), w));
        }
        break;
      case Kind::Xor:
        if (a->operand(1)->is_const()) {
          return mk_eq(a->operand(0), mk_const(c ^ a->operand(1)->value(), w));
        }
        if (a->operand(0)->is_const()) {
          return mk_eq(a->operand(1), mk_const(c ^ a->operand(0)->value(), w));
        }
        break;
      case Kind::Not:
        return mk_eq(a->operand(0), mk_const(truncate_to_width(~c, w), w));
      case Kind::Neg:
        return mk_eq(a->operand(0), mk_const(truncate_to_width(-c, w), w));
      case Kind::ZExt: {
        const ExprRef& x = a->operand(0);
        if (c > width_mask(x->width())) return mk_bool(false);
        return mk_eq(x, mk_const(c, x->width()));
      }
      case Kind::SExt: {
        const ExprRef& x = a->operand(0);
        const uint64_t lo = truncate_to_width(c, x->width());
        const uint64_t back = truncate_to_width(
            static_cast<uint64_t>(sign_extend_64(lo, x->width())), w);
        if (back != c) return mk_bool(false);
        return mk_eq(x, mk_const(lo, x->width()));
      }
      case Kind::Concat: {
        // concat(hi, lo) == c splits into two independent equalities: the
        // interval layer can now decide each half, and independence slicing
        // can put them in different components.
        const ExprRef& hi = a->operand(0);
        const ExprRef& lo = a->operand(1);
        const unsigned lw = lo->width();
        ExprRef eq_hi = rewrite_node(
            mk_eq(hi, mk_const(truncate_to_width(c >> lw, hi->width()),
                               hi->width())));
        ExprRef eq_lo =
            rewrite_node(mk_eq(lo, mk_const(truncate_to_width(c, lw), lw)));
        return mk_land(eq_hi, eq_lo);
      }
      default:
        break;
    }
    return e;
  }

  // --- redundant extract / bitwise narrowing -------------------------------
  // The factories already collapse extract-of-extract/zext/concat; pushing
  // through bitwise operators finishes the job and shrinks the blasted cone.
  if (k == Kind::Extract) {
    const ExprRef& a = e->operand(0);
    if (is_bitwise(a->kind())) {
      ExprRef l = rewrite_node(
          mk_extract(a->operand(0), e->extract_lo(), e->width()));
      ExprRef r = rewrite_node(
          mk_extract(a->operand(1), e->extract_lo(), e->width()));
      return mk_bitwise(a->kind(), l, r);
    }
    if (a->kind() == Kind::Not) {
      return mk_not(rewrite_node(
          mk_extract(a->operand(0), e->extract_lo(), e->width())));
    }
    return e;
  }

  // --- bitwise constant motion ---------------------------------------------
  // Commutative bitwise ops: constant to the right (interning stability),
  // and fold nested constants: (x op c1) op c2 -> x op (c1 op c2).
  if (is_bitwise(k)) {
    const ExprRef& a = e->operand(0);
    const ExprRef& b = e->operand(1);
    if (a->is_const() && !b->is_const()) return mk_bitwise(k, b, a);
    if (b->is_const() && a->kind() == k && a->operand(1)->is_const()) {
      return mk_bitwise(
          k, a->operand(0),
          mk_const(apply_bitwise(k, a->operand(1)->value(), b->value()),
                   e->width()));
    }
    return e;
  }

  return e;
}

ExprRef rewrite(const ExprRef& e) {
  Rewriter rw;
  return rw.rewrite(e);
}

}  // namespace vsd::bv
