// vsd::bv — hash-consed bit-vector expression DAG.
//
// This is the term language shared by the symbolic executor (which builds
// expressions as it interprets dataplane IR) and the solver (which decides
// satisfiability of width-1 expressions). Widths range from 1 to 64 bits.
// Nodes are immutable and interned: structurally equal expressions are the
// same object, so pointer equality is structural equality and the aggressive
// constant folding in the factory functions deduplicates work globally.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace vsd::bv {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

// Expression node kinds. Comparison kinds always produce width-1 results.
enum class Kind : uint8_t {
  Const,    // literal value
  Var,      // free variable (symbolic input byte, fresh KV read, ...)
  Not,      // bitwise complement (logical not at width 1)
  Neg,      // two's-complement negation
  Add,
  Sub,
  Mul,
  UDiv,     // unsigned division; division by zero is a *verifier event*, the
  URem,     // executor guards it, so the solver semantics never see rhs==0
  And,
  Or,
  Xor,
  Shl,      // shift amounts >= width yield 0 (LLVM-style poison avoided by
  LShr,     // defining the result; the IR verifier bounds amounts anyway)
  AShr,
  Eq,       // width-1 result
  Ult,      // unsigned less-than, width-1 result
  Ule,
  Slt,      // signed less-than, width-1 result
  Sle,
  ZExt,     // zero-extend to wider width
  SExt,     // sign-extend to wider width
  Extract,  // bits [lo .. lo+width-1] of the operand
  Concat,   // hi operand in the high bits, lo operand in the low bits
  Ite,      // if-then-else; condition has width 1
};

const char* kind_name(Kind k);
bool is_comparison(Kind k);

// Immutable interned node. Create only through the factory functions below.
class Expr {
 public:
  Kind kind() const { return kind_; }
  unsigned width() const { return width_; }

  // Const payload.
  uint64_t value() const { return value_; }

  // Var payload.
  uint64_t var_id() const { return value_; }
  const std::string& name() const { return name_; }

  // Extract payload: low bit index.
  unsigned extract_lo() const { return aux_; }

  size_t num_operands() const { return ops_.size(); }
  const ExprRef& operand(size_t i) const { return ops_[i]; }
  std::span<const ExprRef> operands() const { return ops_; }

  bool is_const() const { return kind_ == Kind::Const; }
  bool is_const_value(uint64_t v) const {
    return kind_ == Kind::Const && value_ == v;
  }
  bool is_true() const { return width_ == 1 && is_const_value(1); }
  bool is_false() const { return width_ == 1 && is_const_value(0); }

  size_t hash() const { return hash_; }

  // Stable per-process id useful for memo tables keyed by node identity.
  uint64_t uid() const { return uid_; }

  // Public only for the interner; use the mk_* factory functions.
  Expr(Kind kind, unsigned width, uint64_t value, unsigned aux,
       std::string name, std::vector<ExprRef> ops, size_t hash, uint64_t uid);

 private:

  Kind kind_;
  unsigned width_;
  uint64_t value_;  // Const value or Var id
  unsigned aux_;    // Extract low index
  std::string name_;
  std::vector<ExprRef> ops_;
  size_t hash_;
  uint64_t uid_;
};

// Masks a value to `width` bits. width must be in [1, 64].
uint64_t truncate_to_width(uint64_t v, unsigned width);
// Sign-extends the low `width` bits of v to 64 bits.
int64_t sign_extend_64(uint64_t v, unsigned width);

// --- Factory functions (all fold constants and apply local rewrites) ---

ExprRef mk_const(uint64_t value, unsigned width);
ExprRef mk_bool(bool b);
// Creates a fresh variable with a unique id; `name` is for diagnostics.
ExprRef mk_var(std::string name, unsigned width);

ExprRef mk_not(const ExprRef& a);
ExprRef mk_neg(const ExprRef& a);
ExprRef mk_add(const ExprRef& a, const ExprRef& b);
ExprRef mk_sub(const ExprRef& a, const ExprRef& b);
ExprRef mk_mul(const ExprRef& a, const ExprRef& b);
ExprRef mk_udiv(const ExprRef& a, const ExprRef& b);
ExprRef mk_urem(const ExprRef& a, const ExprRef& b);
ExprRef mk_and(const ExprRef& a, const ExprRef& b);
ExprRef mk_or(const ExprRef& a, const ExprRef& b);
ExprRef mk_xor(const ExprRef& a, const ExprRef& b);
ExprRef mk_shl(const ExprRef& a, const ExprRef& b);
ExprRef mk_lshr(const ExprRef& a, const ExprRef& b);
ExprRef mk_ashr(const ExprRef& a, const ExprRef& b);
ExprRef mk_eq(const ExprRef& a, const ExprRef& b);
ExprRef mk_ne(const ExprRef& a, const ExprRef& b);
ExprRef mk_ult(const ExprRef& a, const ExprRef& b);
ExprRef mk_ule(const ExprRef& a, const ExprRef& b);
ExprRef mk_ugt(const ExprRef& a, const ExprRef& b);
ExprRef mk_uge(const ExprRef& a, const ExprRef& b);
ExprRef mk_slt(const ExprRef& a, const ExprRef& b);
ExprRef mk_sle(const ExprRef& a, const ExprRef& b);
ExprRef mk_sgt(const ExprRef& a, const ExprRef& b);
ExprRef mk_sge(const ExprRef& a, const ExprRef& b);
ExprRef mk_zext(const ExprRef& a, unsigned width);
ExprRef mk_sext(const ExprRef& a, unsigned width);
// Extract `width` bits starting at bit `lo`.
ExprRef mk_extract(const ExprRef& a, unsigned lo, unsigned width);
ExprRef mk_concat(const ExprRef& hi, const ExprRef& lo);
ExprRef mk_ite(const ExprRef& cond, const ExprRef& a, const ExprRef& b);

// Width-1 logical helpers (operate on width-1 expressions).
ExprRef mk_land(const ExprRef& a, const ExprRef& b);
ExprRef mk_lor(const ExprRef& a, const ExprRef& b);
ExprRef mk_lnot(const ExprRef& a);
// Conjunction of a list; empty list is `true`.
ExprRef mk_land_all(std::span<const ExprRef> conjuncts);

// Number of live interned nodes (diagnostics / tests).
size_t interned_node_count();

}  // namespace vsd::bv
