// Protocol header views and constructors over Packet.
//
// The views are offset-based accessors (no reinterpret_cast aliasing): every
// field read/write goes through Packet::load_be/store_be, matching the
// big-endian wire format exactly like the IR's PktLoad/PktStore do.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace vsd::net {

using MacAddress = std::array<uint8_t, 6>;

inline constexpr size_t kEtherHeaderSize = 14;
inline constexpr size_t kIpv4MinHeaderSize = 20;
inline constexpr size_t kIpv4MaxHeaderSize = 60;
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;
inline constexpr uint8_t kProtoIcmp = 1;
inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

// IP option kinds used by the IPOptions element (RFC 791).
inline constexpr uint8_t kIpOptEnd = 0;
inline constexpr uint8_t kIpOptNop = 1;
inline constexpr uint8_t kIpOptSecurity = 130;
inline constexpr uint8_t kIpOptLsrr = 131;
inline constexpr uint8_t kIpOptSsrr = 137;
inline constexpr uint8_t kIpOptRecordRoute = 7;
inline constexpr uint8_t kIpOptTimestamp = 68;

// Parses dotted-quad "a.b.c.d" into host-order uint32. Throws on bad input.
uint32_t parse_ipv4(const std::string& s);
std::string format_ipv4(uint32_t addr);

// One's-complement checksum over [off, off+len) of the packet.
uint16_t ones_complement_checksum(const Packet& p, size_t off, size_t len);

// --- Ethernet ---------------------------------------------------------------

struct EtherView {
  Packet& p;
  explicit EtherView(Packet& pkt) : p(pkt) {}

  MacAddress dst() const;
  MacAddress src() const;
  uint16_t ether_type() const { return static_cast<uint16_t>(p.load_be(12, 2)); }
  void set_dst(const MacAddress& m);
  void set_src(const MacAddress& m);
  void set_ether_type(uint16_t t) { p.store_be(12, 2, t); }
};

// --- IPv4 (offset is the start of the IP header within the packet) ----------

struct Ipv4View {
  Packet& p;
  size_t off;
  Ipv4View(Packet& pkt, size_t o) : p(pkt), off(o) {}

  uint8_t version() const { return static_cast<uint8_t>(p.load_be(off, 1)) >> 4; }
  uint8_t ihl() const { return static_cast<uint8_t>(p.load_be(off, 1)) & 0xf; }
  size_t header_len() const { return size_t{ihl()} * 4; }
  uint8_t tos() const { return static_cast<uint8_t>(p.load_be(off + 1, 1)); }
  uint16_t total_len() const { return static_cast<uint16_t>(p.load_be(off + 2, 2)); }
  uint16_t id() const { return static_cast<uint16_t>(p.load_be(off + 4, 2)); }
  uint16_t frag_off_field() const { return static_cast<uint16_t>(p.load_be(off + 6, 2)); }
  uint8_t ttl() const { return static_cast<uint8_t>(p.load_be(off + 8, 1)); }
  uint8_t protocol() const { return static_cast<uint8_t>(p.load_be(off + 9, 1)); }
  uint16_t checksum() const { return static_cast<uint16_t>(p.load_be(off + 10, 2)); }
  uint32_t src() const { return static_cast<uint32_t>(p.load_be(off + 12, 4)); }
  uint32_t dst() const { return static_cast<uint32_t>(p.load_be(off + 16, 4)); }

  void set_version_ihl(uint8_t version, uint8_t ihl) {
    p.store_be(off, 1, static_cast<uint64_t>((version << 4) | (ihl & 0xf)));
  }
  void set_tos(uint8_t v) { p.store_be(off + 1, 1, v); }
  void set_total_len(uint16_t v) { p.store_be(off + 2, 2, v); }
  void set_id(uint16_t v) { p.store_be(off + 4, 2, v); }
  void set_frag_off_field(uint16_t v) { p.store_be(off + 6, 2, v); }
  void set_ttl(uint8_t v) { p.store_be(off + 8, 1, v); }
  void set_protocol(uint8_t v) { p.store_be(off + 9, 1, v); }
  void set_checksum(uint16_t v) { p.store_be(off + 10, 2, v); }
  void set_src(uint32_t v) { p.store_be(off + 12, 4, v); }
  void set_dst(uint32_t v) { p.store_be(off + 16, 4, v); }

  // Recomputes and stores the header checksum over ihl()*4 bytes.
  void update_checksum();
  // True iff the stored checksum verifies.
  bool checksum_ok() const;
};

// --- L4 (UDP/TCP share the port layout) -------------------------------------

struct L4View {
  Packet& p;
  size_t off;  // start of the L4 header
  L4View(Packet& pkt, size_t o) : p(pkt), off(o) {}

  uint16_t src_port() const { return static_cast<uint16_t>(p.load_be(off, 2)); }
  uint16_t dst_port() const { return static_cast<uint16_t>(p.load_be(off + 2, 2)); }
  void set_src_port(uint16_t v) { p.store_be(off, 2, v); }
  void set_dst_port(uint16_t v) { p.store_be(off + 2, 2, v); }
};

// --- Builders ---------------------------------------------------------------

struct PacketSpec {
  MacAddress eth_dst{0x02, 0, 0, 0, 0, 0x01};
  MacAddress eth_src{0x02, 0, 0, 0, 0, 0x02};
  uint16_t ether_type = kEtherTypeIpv4;
  uint32_t ip_src = 0x0a000001;  // 10.0.0.1
  uint32_t ip_dst = 0x0a000002;  // 10.0.0.2
  uint8_t ttl = 64;
  uint8_t protocol = kProtoUdp;
  uint8_t tos = 0;
  uint16_t ip_id = 0;
  uint16_t src_port = 1234;
  uint16_t dst_port = 80;
  // Raw IP options bytes appended to the 20-byte header (padded to 4B).
  std::vector<uint8_t> ip_options;
  size_t payload_len = 26;
  uint8_t payload_fill = 0xab;
  bool fix_checksum = true;
};

// Builds a well-formed Ethernet+IPv4(+options)+L4 packet per the spec.
Packet make_packet(const PacketSpec& spec);

// Builds a packet of exactly `total_len` raw bytes (uniform fill), no
// structure. Used for adversarial / fuzz workloads.
Packet make_raw_packet(size_t total_len, uint8_t fill = 0);

}  // namespace vsd::net
