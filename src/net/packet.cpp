#include "net/packet.hpp"

#include <cassert>
#include <sstream>

namespace vsd::net {

uint64_t Packet::load_be(size_t off, unsigned bytes) const {
  assert(off + bytes <= size());
  uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    v = (v << 8) | data()[off + i];
  }
  return v;
}

void Packet::store_be(size_t off, unsigned bytes, uint64_t value) {
  assert(off + bytes <= size());
  for (unsigned i = 0; i < bytes; ++i) {
    data()[off + bytes - 1 - i] = static_cast<uint8_t>(value & 0xff);
    value >>= 8;
  }
}

void Packet::push_front(size_t n) {
  if (n > head_) {
    const size_t grow = n - head_ + kHeadroom;
    buf_.insert(buf_.begin(), grow, 0);
    head_ += grow;
  }
  head_ -= n;
  std::memset(buf_.data() + head_, 0, n);
}

void Packet::pull_front(size_t n) {
  assert(n <= size());
  head_ += n;
}

void Packet::append(size_t n) { buf_.insert(buf_.end(), n, 0); }

void Packet::truncate(size_t n) {
  assert(n <= size());
  buf_.resize(head_ + n);
}

std::string Packet::hex(size_t max_bytes) const {
  static const char* digits = "0123456789abcdef";
  std::ostringstream os;
  const size_t n = std::min(size(), max_bytes);
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ' ';
    os << digits[data()[i] >> 4] << digits[data()[i] & 0xf];
  }
  if (n < size()) os << " ...(" << size() << "B)";
  return os.str();
}

}  // namespace vsd::net
