#include "net/headers.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace vsd::net {

uint32_t parse_ipv4(const std::string& s) {
  uint32_t out = 0;
  size_t pos = 0;
  for (int part = 0; part < 4; ++part) {
    if (pos >= s.size()) throw std::invalid_argument("bad IPv4: " + s);
    size_t next = 0;
    const int v = std::stoi(s.substr(pos), &next);
    if (v < 0 || v > 255) throw std::invalid_argument("bad IPv4 octet: " + s);
    out = (out << 8) | static_cast<uint32_t>(v);
    pos += next;
    if (part < 3) {
      if (pos >= s.size() || s[pos] != '.')
        throw std::invalid_argument("bad IPv4: " + s);
      ++pos;
    }
  }
  if (pos != s.size()) throw std::invalid_argument("bad IPv4: " + s);
  return out;
}

std::string format_ipv4(uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

uint16_t ones_complement_checksum(const Packet& p, size_t off, size_t len) {
  assert(off + len <= p.size());
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>(p.load_be(off + i, 2));
  }
  if (i < len) {
    sum += static_cast<uint32_t>(p[off + i]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xffff);
}

MacAddress EtherView::dst() const {
  MacAddress m;
  for (size_t i = 0; i < 6; ++i) m[i] = p[i];
  return m;
}

MacAddress EtherView::src() const {
  MacAddress m;
  for (size_t i = 0; i < 6; ++i) m[i] = p[6 + i];
  return m;
}

void EtherView::set_dst(const MacAddress& m) {
  for (size_t i = 0; i < 6; ++i) p[i] = m[i];
}

void EtherView::set_src(const MacAddress& m) {
  for (size_t i = 0; i < 6; ++i) p[6 + i] = m[i];
}

void Ipv4View::update_checksum() {
  set_checksum(0);
  set_checksum(ones_complement_checksum(p, off, header_len()));
}

bool Ipv4View::checksum_ok() const {
  // Summing the header including the stored checksum yields 0 when valid.
  uint32_t sum = 0;
  for (size_t i = 0; i < header_len(); i += 2) {
    sum += static_cast<uint32_t>(p.load_be(off + i, 2));
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xffff) == 0;
}

Packet make_packet(const PacketSpec& spec) {
  std::vector<uint8_t> opts = spec.ip_options;
  while (opts.size() % 4 != 0) opts.push_back(kIpOptEnd);
  if (opts.size() > 40) throw std::invalid_argument("IP options too long");
  const size_t ip_hdr = kIpv4MinHeaderSize + opts.size();
  const size_t l4 = 8;  // UDP-sized L4 header
  const size_t total =
      kEtherHeaderSize + ip_hdr + l4 + spec.payload_len;

  Packet pkt = Packet::of_size(total, spec.payload_fill);
  EtherView eth(pkt);
  eth.set_dst(spec.eth_dst);
  eth.set_src(spec.eth_src);
  eth.set_ether_type(spec.ether_type);

  Ipv4View ip(pkt, kEtherHeaderSize);
  ip.set_version_ihl(4, static_cast<uint8_t>(ip_hdr / 4));
  ip.set_tos(spec.tos);
  ip.set_total_len(static_cast<uint16_t>(ip_hdr + l4 + spec.payload_len));
  ip.set_id(spec.ip_id);
  ip.set_frag_off_field(0);
  ip.set_ttl(spec.ttl);
  ip.set_protocol(spec.protocol);
  ip.set_checksum(0);
  ip.set_src(spec.ip_src);
  ip.set_dst(spec.ip_dst);
  for (size_t i = 0; i < opts.size(); ++i) {
    pkt[kEtherHeaderSize + kIpv4MinHeaderSize + i] = opts[i];
  }
  if (spec.fix_checksum) ip.update_checksum();

  L4View l4v(pkt, kEtherHeaderSize + ip_hdr);
  l4v.set_src_port(spec.src_port);
  l4v.set_dst_port(spec.dst_port);
  // UDP length field.
  pkt.store_be(kEtherHeaderSize + ip_hdr + 4, 2, l4 + spec.payload_len);
  return pkt;
}

Packet make_raw_packet(size_t total_len, uint8_t fill) {
  return Packet::of_size(total_len, fill);
}

}  // namespace vsd::net
