// Synthetic traffic generation for tests and benchmarks.
//
// The paper's testbed replayed real traffic through SMPClick on a Xeon
// server; we substitute deterministic synthetic generators that cover the
// same input classes: well-formed forwarding traffic, malformed headers,
// IP-options-bearing packets, and uniformly random byte soup (the closest
// stand-in for "any sequence of incoming packets").
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace vsd::net {

// xorshift128+ PRNG: deterministic across platforms, seedable per test.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);
  uint64_t next();
  // Uniform in [0, bound).
  uint64_t next_below(uint64_t bound);
  uint8_t next_byte() { return static_cast<uint8_t>(next() & 0xff); }
  bool next_bool() { return (next() & 1) != 0; }

 private:
  uint64_t s0_, s1_;
};

enum class TrafficClass {
  WellFormed,       // valid eth+ipv4+udp, random addresses/ports
  WithIpOptions,    // valid, carrying random (structurally valid) IP options
  MalformedHeader,  // random corruption of version/ihl/len/checksum fields
  RandomBytes,      // uniform random buffer of random length
  TinyPackets,      // below-minimum lengths, stress bounds checks
};

struct WorkloadConfig {
  TrafficClass traffic = TrafficClass::WellFormed;
  size_t count = 100;
  uint64_t seed = 1;
  // Destination addresses are drawn from `dst_pool` when non-empty, so
  // lookup elements can be exercised against a known forwarding table.
  std::vector<uint32_t> dst_pool;
};

// Generates `config.count` packets of the requested class.
std::vector<Packet> generate_workload(const WorkloadConfig& config);

// Single adversarial packet exercising a specific IP option sequence.
Packet make_ip_options_packet(const std::vector<uint8_t>& options,
                              uint32_t dst = 0x0a000002, uint8_t ttl = 64);

}  // namespace vsd::net
