// Packet state: a byte buffer with headroom plus Click-style annotations.
//
// This is the "packet state" of the paper's taxonomy — owned by exactly one
// element at a time, handed off down the pipeline. The pipeline runtime
// enforces the ownership discipline; this class is the data carrier.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace vsd::net {

// Number of 32-bit annotation slots (paint, output port hints, flow ids...).
inline constexpr size_t kMetaSlots = 8;

// Conventional annotation slots used by the element library.
enum MetaSlot : uint32_t {
  kMetaPaint = 0,
  kMetaEtherType = 1,
  kMetaInputPort = 2,
  kMetaFlowHint = 3,
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> bytes) { assign(std::move(bytes)); }

  static Packet of_size(size_t n, uint8_t fill = 0) {
    return Packet(std::vector<uint8_t>(n, fill));
  }

  void assign(std::vector<uint8_t> bytes) {
    // Reserve headroom so encapsulation does not reallocate.
    buf_.assign(kHeadroom, 0);
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    head_ = kHeadroom;
  }

  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return size() == 0; }

  const uint8_t* data() const { return buf_.data() + head_; }
  uint8_t* data() { return buf_.data() + head_; }
  std::span<const uint8_t> bytes() const { return {data(), size()}; }
  std::span<uint8_t> bytes() { return {data(), size()}; }

  uint8_t& operator[](size_t i) { return data()[i]; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  // Big-endian (network order) scalar accessors. Callers must bounds-check;
  // the IR interpreter does and converts violations into traps.
  uint64_t load_be(size_t off, unsigned bytes) const;
  void store_be(size_t off, unsigned bytes, uint64_t value);

  // Prepends n zero bytes (encapsulation). Grows headroom if exhausted.
  void push_front(size_t n);
  // Removes n bytes from the front; n must be <= size().
  void pull_front(size_t n);
  // Appends n zero bytes.
  void append(size_t n);
  // Truncates to n bytes (n <= size()).
  void truncate(size_t n);

  uint32_t meta(size_t slot) const { return meta_.at(slot); }
  void set_meta(size_t slot, uint32_t v) { meta_.at(slot) = v; }
  const std::array<uint32_t, kMetaSlots>& all_meta() const { return meta_; }

  // Hex dump ("0a 1b ..."), truncated to max_bytes, for diagnostics.
  std::string hex(size_t max_bytes = 64) const;

 private:
  static constexpr size_t kHeadroom = 64;
  std::vector<uint8_t> buf_ = std::vector<uint8_t>(kHeadroom, 0);
  size_t head_ = kHeadroom;
  std::array<uint32_t, kMetaSlots> meta_{};
};

}  // namespace vsd::net
