#include "net/workload.hpp"

namespace vsd::net {

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding to decorrelate nearby seeds.
  auto mix = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  s0_ = mix();
  s1_ = mix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::next_below(uint64_t bound) {
  return bound == 0 ? 0 : next() % bound;
}

namespace {

uint32_t pick_dst(Rng& rng, const WorkloadConfig& cfg) {
  if (!cfg.dst_pool.empty()) {
    return cfg.dst_pool[rng.next_below(cfg.dst_pool.size())];
  }
  return static_cast<uint32_t>(rng.next());
}

std::vector<uint8_t> random_valid_options(Rng& rng) {
  std::vector<uint8_t> opts;
  const size_t budget = 4 * (1 + rng.next_below(10));  // 4..40 bytes
  while (opts.size() < budget) {
    switch (rng.next_below(4)) {
      case 0:
        opts.push_back(kIpOptNop);
        break;
      case 1: {  // record-route style: kind, len, pointer
        const size_t room = budget - opts.size();
        if (room < 3) { opts.push_back(kIpOptNop); break; }
        const uint8_t len = static_cast<uint8_t>(3 + rng.next_below(room - 2));
        opts.push_back(kIpOptRecordRoute);
        opts.push_back(len);
        opts.push_back(4);  // pointer
        for (uint8_t i = 3; i < len; ++i) opts.push_back(0);
        break;
      }
      case 2: {  // unknown-but-well-formed option
        const size_t room = budget - opts.size();
        if (room < 2) { opts.push_back(kIpOptNop); break; }
        const uint8_t len = static_cast<uint8_t>(2 + rng.next_below(room - 1));
        opts.push_back(200);  // unassigned kind
        opts.push_back(len);
        for (uint8_t i = 2; i < len; ++i) opts.push_back(rng.next_byte());
        break;
      }
      default:
        opts.push_back(kIpOptEnd);
        while (opts.size() < budget) opts.push_back(0);
        break;
    }
  }
  opts.resize(budget);
  return opts;
}

}  // namespace

std::vector<Packet> generate_workload(const WorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<Packet> out;
  out.reserve(config.count);
  for (size_t i = 0; i < config.count; ++i) {
    switch (config.traffic) {
      case TrafficClass::WellFormed: {
        PacketSpec spec;
        spec.ip_src = static_cast<uint32_t>(rng.next());
        spec.ip_dst = pick_dst(rng, config);
        spec.ttl = static_cast<uint8_t>(2 + rng.next_below(253));
        spec.src_port = static_cast<uint16_t>(rng.next());
        spec.dst_port = static_cast<uint16_t>(rng.next());
        spec.payload_len = 18 + rng.next_below(512);
        out.push_back(make_packet(spec));
        break;
      }
      case TrafficClass::WithIpOptions: {
        PacketSpec spec;
        spec.ip_dst = pick_dst(rng, config);
        spec.ttl = static_cast<uint8_t>(2 + rng.next_below(253));
        spec.ip_options = random_valid_options(rng);
        out.push_back(make_packet(spec));
        break;
      }
      case TrafficClass::MalformedHeader: {
        PacketSpec spec;
        spec.ip_dst = pick_dst(rng, config);
        Packet p = make_packet(spec);
        // Corrupt 1-4 random bytes in the first 34 bytes (eth+ip header).
        const size_t hits = 1 + rng.next_below(4);
        for (size_t h = 0; h < hits; ++h) {
          const size_t off = rng.next_below(std::min<size_t>(p.size(), 34));
          p[off] = rng.next_byte();
        }
        out.push_back(std::move(p));
        break;
      }
      case TrafficClass::RandomBytes: {
        const size_t len = rng.next_below(256);
        Packet p = make_raw_packet(len);
        for (size_t b = 0; b < len; ++b) p[b] = rng.next_byte();
        out.push_back(std::move(p));
        break;
      }
      case TrafficClass::TinyPackets: {
        const size_t len = rng.next_below(20);
        Packet p = make_raw_packet(len);
        for (size_t b = 0; b < len; ++b) p[b] = rng.next_byte();
        out.push_back(std::move(p));
        break;
      }
    }
  }
  return out;
}

Packet make_ip_options_packet(const std::vector<uint8_t>& options,
                              uint32_t dst, uint8_t ttl) {
  PacketSpec spec;
  spec.ip_dst = dst;
  spec.ttl = ttl;
  spec.ip_options = options;
  return make_packet(spec);
}

}  // namespace vsd::net
