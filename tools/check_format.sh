#!/usr/bin/env sh
# clang-format dry-run over the sources. Exits non-zero when any file needs
# reformatting; CI runs this as a non-blocking step.
set -eu

cd "$(dirname "$0")/.."

status=0
if command -v clang-format >/dev/null 2>&1; then
  for f in $(find src tests bench tools examples \
               -name '*.cpp' -o -name '*.hpp' | sort); do
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "needs formatting: $f"
      status=1
    fi
  done
else
  echo "check_format: clang-format not found, skipping C++ formatting" >&2
fi

# vspec hygiene (examples + property packs): no tabs, no trailing
# whitespace, trailing newline present.
for f in examples/*.vspec tests/packs/*.vspec; do
  [ -e "$f" ] || continue
  if grep -q "$(printf '\t')" "$f" || grep -q ' $' "$f"; then
    echo "vspec has tabs or trailing whitespace: $f"
    status=1
  fi
  if [ -n "$(tail -c 1 "$f")" ]; then
    echo "vspec missing trailing newline: $f"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: all files clean"
fi
exit "$status"
