#!/usr/bin/env sh
# clang-format dry-run over the sources. Exits non-zero when any file needs
# reformatting; CI runs this as a non-blocking step.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found, skipping" >&2
  exit 0
fi

status=0
for f in $(find src tests bench tools examples \
             -name '*.cpp' -o -name '*.hpp' | sort); do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: all files clean"
fi
exit "$status"
