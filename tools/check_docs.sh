#!/usr/bin/env bash
# Docs health checks, grep-based so they run anywhere:
#
#   1. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file;
#   2. the vspec reference (docs/vspec.md) mentions every keyword the
#      vspec parser actually accepts — adding a keyword to the grammar
#      without documenting it fails this check.
#
# Run from the repo root: ./tools/check_docs.sh
set -u
cd "$(dirname "$0")/.."
fail=0

# --- 1. internal links -------------------------------------------------------
for f in README.md docs/*.md; do
  dir=$(dirname "$f")
  # Targets of [text](target); external URLs and pure anchors are skipped,
  # fragment suffixes are stripped before the existence check.
  for target in $(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//'); do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $f -> $target"
      fail=1
    fi
  done
done

# --- 2. EBNF keyword sync ----------------------------------------------------
# The parser's accepted keywords, harvested from the comparison sites in
# src/spec/parser.cpp (statement/property/builtin/field-shape keywords)
# and src/verify/predicates.cpp (protocol namespaces).
keywords=$(
  {
    grep -ohE '\.text (==|!=) "[a-z_0-9]+"' src/spec/parser.cpp
    grep -ohE 'at_ident\("[a-z_0-9]+"\)' src/spec/parser.cpp
    grep -ohE '\.(proto|field) (==|!=) "[a-z_0-9]+"' src/spec/parser.cpp
    grep -ohE 'proto == "[a-z_0-9]+"' src/verify/predicates.cpp
  } | grep -oE '"[a-z_0-9]+"' | tr -d '"' | sort -u
)
if [ -z "$keywords" ]; then
  echo "EBNF SYNC: harvested no keywords from the parser — check the greps"
  fail=1
fi
for kw in $keywords; do
  if ! grep -qw -- "$kw" docs/vspec.md; then
    echo "EBNF OUT OF SYNC: parser accepts '$kw' but docs/vspec.md never mentions it"
    fail=1
  fi
done

# --- 3. property-pack coverage ----------------------------------------------
# Every builtin registry element must ship a property pack under
# tests/packs/, and every pack file must name a registered element. Element
# names are harvested from the factory table in src/elements/registry.cpp
# (test-only elements are registered at runtime and never appear there).
elements=$(grep -ohE '\{"[A-Za-z0-9]+",' src/elements/registry.cpp |
  grep -oE '"[A-Za-z0-9]+"' | tr -d '"' | sort -u)
if [ -z "$elements" ]; then
  echo "PACK SYNC: harvested no element names from registry.cpp — check the grep"
  fail=1
fi
for elem in $elements; do
  if [ ! -f "tests/packs/$elem.vspec" ]; then
    echo "PACK MISSING: element '$elem' has no tests/packs/$elem.vspec"
    fail=1
  fi
done
for pack in tests/packs/*.vspec; do
  [ -e "$pack" ] || continue
  stem=$(basename "$pack" .vspec)
  if ! echo "$elements" | grep -qx -- "$stem"; then
    echo "PACK STRAY: $pack matches no element in registry.cpp"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  count=$(echo "$keywords" | wc -w | tr -d ' ')
  npacks=$(echo "$elements" | wc -w | tr -d ' ')
  echo "docs OK: links resolve, vspec reference covers all $count parser keywords, $npacks property packs in sync"
fi
exit "$fail"
