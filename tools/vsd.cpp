// vsd — the command-line verification tool the paper envisions (§1: "an
// automated verification tool that takes as input ... a software pipeline
// and proves that the pipeline does (or does not) satisfy a target
// property").
//
// Usage:
//   vsd list
//   vsd check    <file.vspec> [...] [--jobs N]   batch property checker
//   vsd show     "<pipeline>"
//   vsd run      "<pipeline>" [--packets N | --pcap-like FILE] [--batch B]
//                [--traffic CLASS] [--seed S] [--no-compiled]
//   vsd verify   "<pipeline>" --property crash|bound [--len N] [--unroll]
//                [--jobs N]
//   vsd reach    "<pipeline>" --dst A.B.C.D [--len N] [--eth-offset N]
//                [--jobs N]
//   vsd state    "<pipeline>" --bound N [--element NAME] [--len N]
//                [--jobs N]                 bounded private-state occupancy
//   vsd certify  "<base>" --candidate "<element>" [--after K] [--len N]
//                [--jobs N]
//   vsd baseline "<pipeline>" [--len N] [--budget SECONDS]
//   vsd asm      <file.vsd>              assemble + validate a textual element
//   vsd verify-ir <file.vsd> --property crash|bound [--len N]
//
// Pipelines use the registry config syntax, e.g.
//   "Classifier -> EthDecap -> CheckIPHeader -> IPLookup(10.0.0.0/8 0)"
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "backend/compiled.hpp"
#include "cache/store.hpp"
#include "cache/verdict_cache.hpp"
#include "elements/registry.hpp"
#include "ir/asm.hpp"
#include "ir/ir.hpp"
#include "net/headers.hpp"
#include "net/workload.hpp"
#include "obs/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "spec/check.hpp"
#include "spec/parser.hpp"
#include "spec/report_json.hpp"
#include "testing/fuzz.hpp"
#include "testing/packs.hpp"
#include "verify/certify.hpp"
#include "verify/decomposed.hpp"
#include "verify/monolithic.hpp"
#include "verify/predicates.hpp"

using namespace vsd;

namespace {

// A malformed command line: main() prints the message plus the usage text
// and exits 2, distinct from exit 1 (property failed) and runtime errors.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string get(const std::string& name, const std::string& def) const {
    const auto it = options.find(name);
    return it == options.end() ? def : it->second;
  }
  // Strict numeric flag parse: digits only, no sign, no trailing garbage.
  // std::stoull would silently accept "8x" (-> 8) and "-1" (-> wraparound
  // to 2^64-1) — both turned typos into absurd-but-running configurations.
  uint64_t get_u64(const std::string& name, uint64_t def) const {
    const auto it = options.find(name);
    if (it == options.end()) return def;
    const std::string& v = it->second;
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      throw UsageError("--" + name + " expects a non-negative integer, got '" +
                       v + "'");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
    if (errno == ERANGE || end != v.c_str() + v.size()) {
      throw UsageError("--" + name + " value out of range: '" + v + "'");
    }
    return parsed;
  }
};

Args parse_args(int argc, char** argv) {
  // Boolean flags never consume the next token — otherwise
  // `vsd check --stats file.vspec` would swallow the file as the flag's
  // value and silently check nothing.
  static const char* kBoolFlags[] = {
      "stats",         "one-shot",     "unroll",
      "print",         "no-cross-check", "no-artifacts",
      "no-rewrite",    "no-independence", "no-cex-cache",
      "no-core-grouping", "no-clause-gc", "no-compiled"};
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const std::string key = s.substr(2);
      const bool is_bool =
          std::find_if(std::begin(kBoolFlags), std::end(kBoolFlags),
                       [&key](const char* f) { return key == f; }) !=
          std::end(kBoolFlags);
      if (!is_bool && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        a.options[key] = argv[++i];
      } else {
        a.options[key] = "";
      }
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

// Per-command flag matrix: every option on the command line must be one the
// command actually reads (the verification subcommands additionally take the
// global --trace/--metrics sinks). An unknown flag is a usage error — it used
// to be silently ignored, which turned typos like `vsd certify --stats` into
// runs that quietly did less than asked.
void check_flags(const Args& a) {
  using Set = std::set<std::string>;
  static const Set kAvoid = {"no-rewrite", "no-independence", "no-cex-cache",
                             "no-core-grouping", "no-clause-gc"};
  static const std::map<std::string, Set> kMatrix = [] {
    std::map<std::string, Set> m;
    auto with = [](Set base, const Set& extra) {
      base.insert(extra.begin(), extra.end());
      return base;
    };
    const Set obs = {"trace", "metrics"};
    m["list"] = {};
    m["show"] = {};
    m["asm"] = {"print"};
    m["run"] = {"packets", "count",   "seed",       "batch",
                "pcap-like", "traffic", "no-compiled"};
    m["check"] = with(kAvoid, with(obs, {"jobs", "one-shot", "stats", "json",
                                         "cache-dir"}));
    m["fuzz"] = with(kAvoid,
                     with(obs, {"emit-packs", "check-packs", "seed",
                                "pipelines", "packets", "sequences",
                                "sequence-len", "jobs", "max-elems",
                                "no-cross-check", "no-artifacts", "out",
                                "cache-dir", "no-compiled"}));
    m["serve"] = with(obs, {"socket", "cache-dir", "jobs"});
    m["submit"] = with(obs, {"socket", "jobs"});
    m["verify"] = with(kAvoid, with(obs, {"property", "len", "unroll", "jobs",
                                          "one-shot", "cache-dir", "stats"}));
    m["reach"] = with(kAvoid, with(obs, {"dst", "eth-offset", "len", "jobs",
                                         "one-shot", "stats"}));
    m["state"] = with(kAvoid, with(obs, {"bound", "element", "len", "jobs",
                                         "one-shot", "stats"}));
    m["certify"] = with(obs, {"candidate", "after", "len", "jobs"});
    m["baseline"] = with(obs, {"len", "budget"});
    m["paths"] = with(obs, {"len", "jobs"});
    m["profile"] = with(kAvoid, with(obs, {"len", "jobs", "one-shot"}));
    m["verify-ir"] = with(obs, {"len", "property"});
    return m;
  }();
  const auto it = kMatrix.find(a.positional[0]);
  if (it == kMatrix.end()) return;  // unknown command: usage() handles it
  for (const auto& [key, value] : a.options) {
    if (it->second.count(key) == 0) {
      throw UsageError("--" + key + " is not a flag of 'vsd " +
                       a.positional[0] + "'");
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int usage() {
  std::puts(
      "vsd — verifiable software dataplane tool\n"
      "  vsd list                                  registered elements\n"
      "  vsd check <file.vspec> [...] [--jobs N] [--json FILE]\n"
      "           [--cache-dir DIR]\n"
      "      run every assertion of the spec(s); --json writes a\n"
      "      machine-readable per-assertion report; --cache-dir reuses\n"
      "      verdicts from a persistent cross-run cache\n"
      "  vsd serve --socket PATH [--cache-dir DIR] [--jobs N]\n"
      "      verification daemon: accepts vspec jobs as newline-delimited\n"
      "      JSON over an AF_UNIX socket; SIGTERM drains and exits\n"
      "  vsd submit <file.vspec> --socket PATH [--jobs N]\n"
      "      send a spec to a running daemon and print its JSON report\n"
      "      (verify/reach/state/check also take --stats for solver-layer\n"
      "       counters, --one-shot to disable incremental solving, and\n"
      "       --no-rewrite/--no-independence/--no-cex-cache/\n"
      "       --no-core-grouping/--no-clause-gc to disable one\n"
      "       query-avoidance layer; every verification subcommand also\n"
      "       takes --trace FILE for a Chrome trace-event JSON and\n"
      "       --metrics FILE for a JSONL metrics log; flags a subcommand\n"
      "       does not document are usage errors, exit 2)\n"
      "  vsd fuzz [--seed S] [--pipelines N] [--packets N] [--sequences N]\n"
      "           [--sequence-len K] [--max-elems K] [--jobs N] [--out DIR]\n"
      "           [--no-cross-check] [--no-artifacts] [--cache-dir DIR]\n"
      "           [--no-compiled]\n"
      "      differential fuzz; --cache-dir adds the warm-vs-cold\n"
      "      verdict-cache oracle; --no-compiled pins the interpreter\n"
      "      engine (default also runs the lockstep compiled-vs-interp\n"
      "      oracle)\n"
      "  vsd fuzz --emit-packs [DIR]              write per-element "
      "property packs\n"
      "  vsd fuzz --check-packs [DIR] [--jobs N]  verify the pack corpus\n"
      "  vsd show \"<pipeline>\"                     print element IR\n"
      "  vsd run \"<pipeline>\" [--packets N | --pcap-like FILE] [--batch B]\n"
      "          [--traffic wellformed|options|malformed|random|tiny]\n"
      "          [--seed S] [--no-compiled]\n"
      "      compile the chain once, stream batched packets, report\n"
      "      packets/sec; --pcap-like replays hex-dump packets (the fuzz\n"
      "      .pkt artifact format); --no-compiled runs the interpreter\n"
      "  vsd verify \"<pipeline>\" --property crash|bound [--len N] "
      "[--unroll] [--jobs N] [--cache-dir DIR]\n"
      "  vsd reach \"<pipeline>\" --dst A.B.C.D [--len N] [--eth-offset N] "
      "[--jobs N]\n"
      "  vsd state \"<pipeline>\" --bound N [--element NAME] [--len N] "
      "[--jobs N]\n"
      "  vsd certify \"<base>\" --candidate \"<element>\" [--after K] "
      "[--len N] [--jobs N]\n"
      "  vsd baseline \"<pipeline>\" [--len N] [--budget SECONDS]\n"
      "  vsd paths \"<pipeline>\" [--len N] [--jobs N]  composed path "
      "listing\n"
      "  vsd profile \"<pipeline>\" [--len N] [--jobs N]  per-element, "
      "per-phase\n"
      "      time/query attribution (runs crash + bound verification "
      "traced)\n"
      "  vsd asm <file.vsd>                        assemble + validate\n"
      "  vsd verify-ir <file.vsd> --property crash|bound [--len N]");
  return 2;
}

// --stats: the solver-layer and verification counters of one property call
// (CheckStats splits + the incremental decision-layer counters).
void print_verify_stats(const verify::VerifyStats& s) {
  const auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf(
      "  stats: %llu solver queries, %llu composed paths, %llu suspects "
      "(%llu eliminated)\n",
      u(s.solver_queries), u(s.composed_paths_checked), u(s.suspects_found),
      u(s.suspects_eliminated));
  std::printf(
      "  solver: %llu conflicts, %llu decisions, %llu blast nodes, "
      "%llu cache hits\n",
      u(s.sat_conflicts), u(s.sat_decisions), u(s.blast_nodes),
      u(s.solver_cache_hits));
  std::printf(
      "  incremental: %llu contexts, %llu assumption queries, %llu "
      "assumption reuses, %llu learnt retained\n",
      u(s.contexts_opened), u(s.incremental_queries), u(s.assumption_reuses),
      u(s.learnt_retained));
  std::printf(
      "  avoidance: %llu sat solves, %llu rewritten (%llu decided), "
      "%llu sliced, %llu cex-cache hits, %llu core discharges "
      "(%llu suspects)\n",
      u(s.sat_solves), u(s.rewrites_applied), u(s.rewrite_decided),
      u(s.slice_decided), u(s.cex_cache_hits), u(s.core_discharges),
      u(s.suspects_core_discharged));
  if (s.learnt_gc_runs != 0) {
    std::printf("  clause gc: %llu run(s), %llu learnt clauses dropped\n",
                u(s.learnt_gc_runs), u(s.learnt_gc_removed));
  }
  if (s.refinements_attempted != 0) {
    std::printf(
        "  refinement: %llu attempted, %llu certified, %llu eliminated\n",
        u(s.refinements_attempted), u(s.refinements_certified),
        u(s.refinements_eliminated));
  }
}

void apply_avoidance_flags(const Args& a, verify::DecomposedConfig* cfg) {
  cfg->rewrite = !a.flag("no-rewrite");
  cfg->independence = !a.flag("no-independence");
  cfg->cex_cache = !a.flag("no-cex-cache");
  cfg->core_grouping = !a.flag("no-core-grouping");
  cfg->clause_gc = !a.flag("no-clause-gc");
}

void print_counterexample(const verify::Counterexample& ce) {
  std::printf("  trap: %s\n", ir::trap_name(ce.trap));
  std::printf("  packet: %s\n", ce.packet.hex(48).c_str());
  if (!ce.element_path.empty()) {
    std::printf("  path:");
    for (const auto& n : ce.element_path) std::printf(" -> %s", n.c_str());
    std::printf("\n");
  }
  if (!ce.state_note.empty()) std::printf("  note: %s\n", ce.state_note.c_str());
}

int cmd_list() {
  for (const elements::ElementInfo& info : elements::element_catalog()) {
    std::printf("%s\n", info.usage.c_str());
  }
  return 0;
}

// --- vsd check: the vspec batch checker -------------------------------------
// (JSON serialization lives in spec/report_json.hpp, shared with the
// serve daemon so the schemas cannot drift.)

void print_check_outcome(const spec::AssertionOutcome& o) {
  std::printf("  %s  %s  [%s in %.2f s%s%s]\n", o.passed ? "PASS" : "FAIL",
              o.text.c_str(), verify::verdict_name(o.verdict), o.seconds,
              o.detail.empty() ? "" : "; ",
              o.detail.empty() ? "" : o.detail.c_str());
  for (size_t i = 0; i < o.counterexamples.size(); ++i) {
    print_counterexample(o.counterexamples[i]);
    if (i < o.replays.size()) {
      std::printf("  %s\n", o.replays[i].c_str());
    }
  }
}

int cmd_check(const Args& a) {
  spec::CheckOptions opts;
  opts.jobs = a.get_u64("jobs", 1);
  opts.incremental = !a.flag("one-shot");
  opts.rewrite = !a.flag("no-rewrite");
  opts.independence = !a.flag("no-independence");
  opts.cex_cache = !a.flag("no-cex-cache");
  opts.core_grouping = !a.flag("no-core-grouping");
  opts.clause_gc = !a.flag("no-clause-gc");
  const bool with_stats = a.flag("stats");
  const std::string json_path = a.get("json", "");
  if (a.options.count("json") != 0 && json_path.empty()) {
    throw UsageError("--json expects an output file path");
  }
  const std::string cache_dir = a.get("cache-dir", "");
  if (a.options.count("cache-dir") != 0 && cache_dir.empty()) {
    throw UsageError("--cache-dir expects a directory path");
  }
  std::unique_ptr<cache::VerdictCache> cache;
  if (!cache_dir.empty()) {
    std::string err;
    if (!cache::Store::validate_dir(cache_dir, &err)) {
      throw UsageError("--cache-dir: " + err);
    }
    cache = std::make_unique<cache::VerdictCache>(cache_dir);
    opts.cache = cache.get();
  }
  std::string json = "{\"specs\":[";
  bool all_passed = true;
  for (size_t i = 1; i < a.positional.size(); ++i) {
    const std::string& path = a.positional[i];
    spec::SpecFile sf;
    try {
      sf = spec::parse_spec(read_file(path));
    } catch (const spec::SpecError& e) {
      std::printf("%s:%s\n", path.c_str(), e.what());
      return 2;
    } catch (const std::exception& e) {
      std::printf("%s: %s\n", path.c_str(), e.what());
      return 2;
    }
    std::printf("%s: pipeline \"%s\"\n", path.c_str(),
                sf.pipeline_config.c_str());
    std::printf("  (packet_len %zu, ip_offset %zu, jobs %zu)\n",
                sf.packet_len, sf.ip_offset, opts.jobs);
    const spec::CheckReport rep = spec::check_spec(sf, opts);
    for (const spec::AssertionOutcome& o : rep.outcomes) {
      print_check_outcome(o);
      if (with_stats) print_verify_stats(o.stats);
    }
    std::printf("%s: %zu/%zu assertions passed\n", path.c_str(), rep.passed,
                rep.outcomes.size());
    if (cache != nullptr) {
      std::printf("  cache: %llu assertion hit(s), %llu miss(es)\n",
                  static_cast<unsigned long long>(rep.cache_hits),
                  static_cast<unsigned long long>(rep.cache_misses));
    }
    all_passed = all_passed && rep.ok;
    if (!json_path.empty()) {
      if (i != 1) json += ",";
      json += spec::spec_report_json(path, sf, rep);
    }
  }
  if (!json_path.empty()) {
    json += "],\"ok\":" + std::string(all_passed ? "true" : "false") + "}\n";
    std::ofstream out(json_path);
    if (!out) {
      std::printf("error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << json;
  }
  return all_passed ? 0 : 1;
}

// --- vsd fuzz: the differential fuzzing harness -------------------------------

int cmd_fuzz(const Args& a) {
  if (a.options.count("emit-packs") != 0) {
    std::string dir = a.get("emit-packs", "");
    if (dir.empty()) dir = "tests/packs";
    const size_t n = fuzz::write_packs(dir);
    std::printf("wrote %zu property packs to %s/\n", n, dir.c_str());
    return 0;
  }
  if (a.options.count("check-packs") != 0) {
    std::string dir = a.get("check-packs", "");
    if (dir.empty()) dir = "tests/packs";
    const fuzz::PackCheckResult r =
        fuzz::check_packs(dir, a.get_u64("jobs", 1));
    for (const std::string& line : r.lines) {
      std::printf("%s\n", line.c_str());
    }
    std::printf("pack corpus %s: %s\n", dir.c_str(), r.ok ? "OK" : "FAIL");
    return r.ok ? 0 : 1;
  }

  fuzz::FuzzConfig cfg;
  cfg.seed = a.get_u64("seed", 1);
  cfg.pipelines = a.get_u64("pipelines", 10);
  cfg.packets = a.get_u64("packets", 100);
  cfg.sequences = a.get_u64("sequences", 4);
  cfg.sequence_len = a.get_u64("sequence-len", 6);
  cfg.jobs = a.get_u64("jobs", 1);
  cfg.gen.max_chain = a.get_u64("max-elems", 4);
  cfg.cross_check = !a.flag("no-cross-check");
  cfg.rewrite = !a.flag("no-rewrite");
  cfg.independence = !a.flag("no-independence");
  cfg.cex_cache = !a.flag("no-cex-cache");
  cfg.core_grouping = !a.flag("no-core-grouping");
  cfg.clause_gc = !a.flag("no-clause-gc");
  cfg.compiled = !a.flag("no-compiled");
  cfg.cache_dir = a.get("cache-dir", "");
  if (a.options.count("cache-dir") != 0 && cfg.cache_dir.empty()) {
    throw UsageError("--cache-dir expects a directory path");
  }
  if (!cfg.cache_dir.empty()) {
    std::string err;
    if (!cache::Store::validate_dir(cfg.cache_dir, &err)) {
      throw UsageError("--cache-dir: " + err);
    }
  }
  cfg.artifact_dir = a.flag("no-artifacts") ? "" : a.get("out", "fuzz-failures");
  const fuzz::FuzzReport report = fuzz::run_fuzz(cfg);
  std::printf("%s", report.summary().c_str());
  if (!report.ok() && !cfg.artifact_dir.empty()) {
    std::printf("FAIL artifacts (repro .vspec + .pkt) written to %s/\n",
                cfg.artifact_dir.c_str());
  }
  std::printf("fuzz: %zu pipelines, %zu failure(s)\n", report.outcomes.size(),
              report.failures.size());
  return report.ok() ? 0 : 1;
}

int cmd_show(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  for (size_t i = 0; i < pl.size(); ++i) {
    std::printf("=== [%zu] %s ===\n%s\n", i, pl.element(i).name().c_str(),
                ir::to_string(pl.element(i).program()).c_str());
  }
  return 0;
}

// --pcap-like input: one packet per line as whitespace-separated hex bytes
// with an optional `| meta <slot>:<value> ...` suffix and `#` comments —
// exactly the format of the fuzz harness's .pkt repro artifacts, so a
// shrunk repro replays directly: `vsd run "<cfg>" --pcap-like f.pkt`.
std::vector<net::Packet> read_pcap_like(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("--pcap-like: cannot open " + path);
  std::vector<net::Packet> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = path + ":" + std::to_string(lineno);
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string meta_part;
    const size_t bar = line.find('|');
    if (bar != std::string::npos) {
      meta_part = line.substr(bar + 1);
      line.resize(bar);
    }
    std::istringstream hex(line);
    std::vector<uint8_t> bytes;
    std::string tok;
    while (hex >> tok) {
      if (tok.size() != 2 ||
          tok.find_first_not_of("0123456789abcdefABCDEF") !=
              std::string::npos) {
        throw UsageError(where + ": bad hex byte '" + tok + "'");
      }
      bytes.push_back(
          static_cast<uint8_t>(std::strtoul(tok.c_str(), nullptr, 16)));
    }
    if (bytes.empty() && meta_part.empty()) continue;  // blank / comment line
    net::Packet p(std::move(bytes));
    std::istringstream meta(meta_part);
    std::string mtok;
    if (meta >> mtok) {
      if (mtok != "meta") {
        throw UsageError(where + ": expected 'meta' after '|', got '" + mtok +
                         "'");
      }
      while (meta >> mtok) {
        const size_t colon = mtok.find(':');
        if (colon == std::string::npos) {
          throw UsageError(where + ": bad meta entry '" + mtok +
                           "' (want slot:value)");
        }
        errno = 0;
        char* end = nullptr;
        const unsigned long slot = std::strtoul(mtok.c_str(), &end, 10);
        if (end != mtok.c_str() + colon || slot >= net::kMetaSlots) {
          throw UsageError(where + ": bad meta slot in '" + mtok + "'");
        }
        const char* vbeg = mtok.c_str() + colon + 1;
        const unsigned long long v = std::strtoull(vbeg, &end, 10);
        if (*vbeg == '\0' || *end != '\0' || errno == ERANGE ||
            v > UINT32_MAX) {
          throw UsageError(where + ": bad meta value in '" + mtok + "'");
        }
        p.set_meta(slot, static_cast<uint32_t>(v));
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

int cmd_run(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  const auto problems = pl.validate();
  for (const auto& p : problems) std::printf("warning: %s\n", p.c_str());

  // Engine selection: the chain is compiled once at parse (Element owns a
  // CompiledProgram); --no-compiled pins this run to the interpreter for
  // A/B comparisons.
  const bool compiled = !a.flag("no-compiled");
  pl.set_engine(compiled ? pipeline::Engine::Compiled
                         : pipeline::Engine::Interp);

  const uint64_t batch = a.get_u64("batch", 32);
  if (batch == 0) throw UsageError("--batch must be at least 1");

  std::vector<net::Packet> inputs;
  const std::string pcap_like = a.get("pcap-like", "");
  if (a.options.count("pcap-like") != 0 && pcap_like.empty()) {
    throw UsageError("--pcap-like expects an input file path");
  }
  if (!pcap_like.empty()) {
    inputs = read_pcap_like(pcap_like);
    if (inputs.empty()) {
      throw UsageError("--pcap-like: no packets in " + pcap_like);
    }
  } else {
    net::WorkloadConfig cfg;
    // --packets is the documented spelling; --count is the historical one.
    cfg.count = a.get_u64("packets", a.get_u64("count", 1000));
    cfg.seed = a.get_u64("seed", 1);
    const std::string traffic = a.get("traffic", "wellformed");
    if (traffic == "wellformed") cfg.traffic = net::TrafficClass::WellFormed;
    else if (traffic == "options") cfg.traffic = net::TrafficClass::WithIpOptions;
    else if (traffic == "malformed") cfg.traffic = net::TrafficClass::MalformedHeader;
    else if (traffic == "random") cfg.traffic = net::TrafficClass::RandomBytes;
    else if (traffic == "tiny") cfg.traffic = net::TrafficClass::TinyPackets;
    else { std::printf("unknown traffic class: %s\n", traffic.c_str()); return 2; }
    inputs = net::generate_workload(cfg);
  }

  // Batched streaming drive. The timer covers the processing loop only
  // (workload generation and reporting are outside), so packets/sec is the
  // engine's throughput; diagnostics are deferred to keep I/O out of it.
  size_t delivered = 0, dropped = 0, trapped = 0;
  uint64_t instructions = 0;
  ir::TrapKind first_trap = ir::TrapKind::Unreachable;
  size_t first_trap_element = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t base = 0; base < inputs.size(); base += batch) {
    const size_t end = std::min(inputs.size(), base + static_cast<size_t>(batch));
    for (size_t i = base; i < end; ++i) {
      const pipeline::PipelineResult r = pl.process(inputs[i]);
      instructions += r.instructions;
      switch (r.action) {
        case pipeline::FinalAction::Delivered: ++delivered; break;
        case pipeline::FinalAction::Dropped: ++dropped; break;
        case pipeline::FinalAction::Trapped:
          if (trapped == 0) {
            first_trap = r.trap;
            first_trap_element = r.exit_element;
          }
          ++trapped;
          break;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (trapped != 0) {
    std::printf("TRAP %s at [%s] (first of %zu)\n", ir::trap_name(first_trap),
                pl.element(first_trap_element).name().c_str(), trapped);
  }
  const size_t total = inputs.size();
  std::printf("%zu packets (%s engine, batch %llu): %zu delivered, "
              "%zu dropped, %zu trapped; %.1f instr/pkt\n",
              total, compiled ? "compiled" : "interp",
              static_cast<unsigned long long>(batch), delivered, dropped,
              trapped, static_cast<double>(instructions) / total);
  std::printf("  %.3f s, %.0f packets/sec\n", seconds,
              seconds > 0 ? static_cast<double>(total) / seconds : 0.0);
  for (size_t i = 0; i < pl.size(); ++i) {
    const auto& c = pl.element(i).counters();
    std::printf("  [%zu] %-16s in=%llu emit=%llu drop=%llu\n", i,
                pl.element(i).name().c_str(),
                static_cast<unsigned long long>(c.packets_in),
                static_cast<unsigned long long>(c.emitted),
                static_cast<unsigned long long>(c.dropped));
  }
  return trapped == 0 ? 0 : 1;
}

int cmd_verify(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  if (a.flag("unroll")) cfg.loop_mode = symbex::LoopMode::Unroll;
  cfg.jobs = a.get_u64("jobs", 1);  // 0 = one worker per hardware thread
  cfg.incremental = !a.flag("one-shot");
  apply_avoidance_flags(a, &cfg);
  // Persistent cross-run verdict cache, as on `vsd check` / `vsd serve`.
  // (This used to be silently ignored here although the docs promise it.)
  const std::string cache_dir = a.get("cache-dir", "");
  if (a.options.count("cache-dir") != 0 && cache_dir.empty()) {
    throw UsageError("--cache-dir expects a directory path");
  }
  std::unique_ptr<cache::VerdictCache> cache;
  if (!cache_dir.empty()) {
    std::string err;
    if (!cache::Store::validate_dir(cache_dir, &err)) {
      throw UsageError("--cache-dir: " + err);
    }
    cache = std::make_unique<cache::VerdictCache>(cache_dir);
    cfg.decision_cache = cache.get();
  }
  verify::DecomposedVerifier verifier(cfg);

  const std::string prop = a.get("property", "crash");
  if (prop == "crash") {
    const verify::CrashFreedomReport r = verifier.verify_crash_freedom(pl);
    std::printf("crash-freedom (len %zu): %s in %.2f s\n", cfg.packet_len,
                verify::verdict_name(r.verdict), r.seconds);
    std::printf("  suspects %llu, eliminated %llu, elements summarized %llu "
                "(+%llu cached)\n",
                static_cast<unsigned long long>(r.stats.suspects_found),
                static_cast<unsigned long long>(r.stats.suspects_eliminated),
                static_cast<unsigned long long>(r.stats.elements_summarized),
                static_cast<unsigned long long>(r.stats.summary_cache_hits));
    if (a.flag("stats")) print_verify_stats(r.stats);
    for (const auto& ce : r.counterexamples) print_counterexample(ce);
    return r.verdict == verify::Verdict::Proven ? 0 : 1;
  }
  if (prop == "bound") {
    const verify::InstructionBoundReport r =
        verifier.verify_instruction_bound(pl);
    std::printf("instruction bound (len %zu): %s, max %llu%s in %.2f s\n",
                cfg.packet_len, verify::verdict_name(r.verdict),
                static_cast<unsigned long long>(r.max_instructions),
                r.bound_is_exact ? " (exact)" : " (upper bound)", r.seconds);
    if (r.witness) {
      std::printf("  witness (%llu instrs on replay): %s\n",
                  static_cast<unsigned long long>(r.witness_instructions),
                  r.witness->hex(48).c_str());
    }
    if (a.flag("stats")) print_verify_stats(r.stats);
    return r.verdict == verify::Verdict::Proven ? 0 : 1;
  }
  std::printf("unknown property: %s\n", prop.c_str());
  return 2;
}

int cmd_reach(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  const uint32_t dst = net::parse_ipv4(a.get("dst", "10.0.0.1"));
  const size_t eth_off = a.get_u64("eth-offset", 0);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.jobs = a.get_u64("jobs", 1);
  cfg.incremental = !a.flag("one-shot");
  apply_avoidance_flags(a, &cfg);
  verify::DecomposedVerifier verifier(cfg);
  const verify::ReachabilityReport r = verifier.verify_never_dropped(
      pl, [&](const symbex::SymPacket& p) {
        return verify::both(verify::wellformed_ipv4_checksummed(p, eth_off),
                            verify::dst_ip_is(p, dst, eth_off + 14));
      });
  std::printf(
      "'well-formed packets to %s are never dropped': %s in %.2f s\n",
      net::format_ipv4(dst).c_str(), verify::verdict_name(r.verdict),
      r.seconds);
  if (a.flag("stats")) print_verify_stats(r.stats);
  for (const auto& ce : r.counterexamples) print_counterexample(ce);
  return r.verdict == verify::Verdict::Proven ? 0 : 1;
}

int cmd_state(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.jobs = a.get_u64("jobs", 1);
  cfg.incremental = !a.flag("one-shot");
  apply_avoidance_flags(a, &cfg);
  verify::DecomposedVerifier verifier(cfg);
  verify::StateBoundSpec spec;
  spec.bound = a.get_u64("bound", 0);
  spec.element = a.get("element", "");
  if (!spec.element.empty()) {
    // A misspelled element would silently bound an empty set of tables
    // and "prove" occupancy 0 — reject it like the vspec checker does.
    std::vector<std::string> names;
    for (size_t e = 0; e < pl.size(); ++e) names.push_back(pl.element(e).name());
    if (std::find(names.begin(), names.end(), spec.element) == names.end()) {
      const std::string sugg = elements::nearest_name(spec.element, names);
      std::printf("pipeline has no element named '%s'%s\n",
                  spec.element.c_str(),
                  sugg.empty() ? ""
                               : (" (did you mean '" + sugg + "'?)").c_str());
      return 2;
    }
  }
  const verify::StateBoundReport r = verifier.verify_bounded_state(
      pl, [](const symbex::SymPacket&) { return bv::mk_bool(true); }, spec);
  std::printf("bounded state (%s <= %llu, len %zu): %s in %.2f s\n",
              spec.element.empty() ? "pipeline" : spec.element.c_str(),
              static_cast<unsigned long long>(spec.bound), cfg.packet_len,
              verify::verdict_name(r.verdict), r.seconds);
  if (a.flag("stats")) print_verify_stats(r.stats);
  for (const verify::TableOccupancy& t : r.tables) {
    std::printf("  [%zu] %s.%s: %llu distinct key(s)%s\n", t.element,
                t.element_name.c_str(), t.table_name.c_str(),
                static_cast<unsigned long long>(t.keys_found),
                t.exhausted ? " (exhausted)" : "");
  }
  if (r.verdict == verify::Verdict::Violated) {
    std::printf("  packet sequence inserting %llu entries:\n",
                static_cast<unsigned long long>(r.occupancy));
    for (const net::Packet& p : r.packet_sequence) {
      std::printf("    %s\n", p.hex(32).c_str());
    }
  }
  return r.verdict == verify::Verdict::Proven ? 0 : 1;
}

int cmd_certify(const Args& a) {
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.jobs = a.get_u64("jobs", 1);
  verify::DecomposedVerifier verifier(cfg);
  const verify::CertificationReport r = verify::certify_element(
      verifier, a.positional[1], a.get("candidate", "Null"),
      a.get_u64("after", 0));
  std::printf("%s\n", r.summary.c_str());
  for (const auto& ce : r.crash.counterexamples) print_counterexample(ce);
  return r.certified ? 0 : 1;
}

int cmd_paths(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.jobs = a.get_u64("jobs", 1);
  verify::DecomposedVerifier verifier(cfg);
  const verify::ComposedPaths composed = verifier.enumerate_paths(pl);
  std::printf("%zu composed end-to-end paths (len %zu)%s:\n",
              composed.paths.size(), cfg.packet_len,
              composed.complete ? "" : " [TRUNCATED]");
  for (size_t i = 0; i < composed.paths.size(); ++i) {
    const verify::ComposedPath& cp = composed.paths[i];
    const bool feasible = !verifier.solver().is_unsat(cp.constraint);
    std::string action = symbex::seg_action_name(cp.action);
    if (cp.action == symbex::SegAction::Emit) {
      action += "(" + std::to_string(cp.port) + ")";
    }
    if (cp.action == symbex::SegAction::Trap) {
      action += std::string("(") + ir::trap_name(cp.trap) + ")";
    }
    std::printf("  p%-3zu %-22s #instr=%llu%s  via", i, action.c_str(),
                static_cast<unsigned long long>(cp.instr_count),
                cp.count_is_bound ? "(bound)" : "");
    for (const auto& n : cp.element_path) std::printf(" %s", n.c_str());
    if (!feasible) std::printf("  [infeasible]");
    std::printf("\n");
  }
  return 0;
}

// --- vsd profile: per-element, per-phase attribution ------------------------

int cmd_profile(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.jobs = a.get_u64("jobs", 1);
  cfg.incremental = !a.flag("one-shot");
  apply_avoidance_flags(a, &cfg);
  verify::DecomposedVerifier verifier(cfg);

  // Profile always traces (that's its whole point); with a global --trace
  // the sinks still get everything since enable() keeps prior events.
  obs::enable(true);
  const verify::CrashFreedomReport crash = verifier.verify_crash_freedom(pl);
  const verify::InstructionBoundReport bound =
      verifier.verify_instruction_bound(pl);

  std::printf("profile \"%s\" (len %zu, jobs %zu)\n",
              a.positional[1].c_str(), cfg.packet_len, cfg.jobs);
  std::printf("  crash-freedom: %s in %.2f s; instruction bound: %s "
              "(max %llu) in %.2f s\n",
              verify::verdict_name(crash.verdict), crash.seconds,
              verify::verdict_name(bound.verdict),
              static_cast<unsigned long long>(bound.max_instructions),
              bound.seconds);

  const std::vector<obs::SpanEvent> events = obs::events_snapshot();

  // Per-phase: wall time and span count per category.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_cat;  // count, us
  for (const obs::SpanEvent& e : events) {
    auto& [n, us] = by_cat[obs::cat_name(e.cat)];
    ++n;
    us += e.dur_us;
  }
  std::printf("\n  %-12s %8s %12s\n", "phase", "spans", "total ms");
  for (const auto& [cat, v] : by_cat) {
    std::printf("  %-12s %8llu %12.2f\n", cat.c_str(),
                static_cast<unsigned long long>(v.first),
                static_cast<double>(v.second) / 1000.0);
  }

  // Per-element: summarization time plus stitched-decision time attributed
  // to the path's final element (the suspect's own element).
  struct ElemRow {
    uint64_t summarize_us = 0, summaries = 0;
    uint64_t stitch_us = 0, suspects = 0;
  };
  std::map<std::string, ElemRow> by_elem;
  const auto arg_of = [](const obs::SpanEvent& e,
                         const char* key) -> const std::string* {
    for (const auto& [k, v] : e.args) {
      if (std::strcmp(k, key) == 0) return &v;
    }
    return nullptr;
  };
  for (const obs::SpanEvent& e : events) {
    if (e.cat == obs::Cat::Summarize) {
      if (const std::string* elem = arg_of(e, "element")) {
        ElemRow& row = by_elem[*elem];
        row.summarize_us += e.dur_us;
        ++row.summaries;
      }
    } else if (e.cat == obs::Cat::Stitch) {
      if (const std::string* path = arg_of(e, "path")) {
        const size_t sep = path->rfind(" > ");
        ElemRow& row =
            by_elem[sep == std::string::npos ? *path
                                             : path->substr(sep + 3)];
        row.stitch_us += e.dur_us;
        ++row.suspects;
      }
    }
  }
  if (!by_elem.empty()) {
    std::printf("\n  %-20s %10s %12s %9s %12s\n", "element", "summaries",
                "summ ms", "suspects", "stitch ms");
    for (const auto& [elem, row] : by_elem) {
      std::printf("  %-20s %10llu %12.2f %9llu %12.2f\n", elem.c_str(),
                  static_cast<unsigned long long>(row.summaries),
                  static_cast<double>(row.summarize_us) / 1000.0,
                  static_cast<unsigned long long>(row.suspects),
                  static_cast<double>(row.stitch_us) / 1000.0);
    }
  }

  // Solver attribution: which avoidance-ladder rung decided the queries.
  const std::map<std::string, uint64_t> counters = obs::counters_snapshot();
  bool header = false;
  for (const auto& [name, value] : counters) {
    if (name.rfind("solver.rung.", 0) != 0) continue;
    if (!header) {
      std::printf("\n  %-24s %10s\n", "query decided by", "queries");
      header = true;
    }
    std::printf("  %-24s %10llu\n", name.substr(12).c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}

int cmd_asm(const Args& a) {
  const ir::Program p = ir::assemble(read_file(a.positional[1]));
  std::printf("assembled @%s: %zu function(s), %zu static table(s), %zu kv "
              "table(s), %u output port(s)\n",
              p.name.c_str(), p.functions.size(), p.static_tables.size(),
              p.kv_tables.size(), p.num_output_ports);
  if (a.flag("print")) std::printf("%s", ir::disassemble(p).c_str());
  return 0;
}

int cmd_verify_ir(const Args& a) {
  pipeline::Pipeline pl;
  const ir::Program prog = ir::assemble(read_file(a.positional[1]));
  pl.add(prog.name, prog);
  verify::DecomposedConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  verify::DecomposedVerifier verifier(cfg);
  const std::string prop = a.get("property", "crash");
  if (prop == "crash") {
    const verify::CrashFreedomReport r = verifier.verify_crash_freedom(pl);
    std::printf("crash-freedom of @%s (len %zu): %s in %.2f s\n",
                prog.name.c_str(), cfg.packet_len,
                verify::verdict_name(r.verdict), r.seconds);
    for (const auto& ce : r.counterexamples) print_counterexample(ce);
    return r.verdict == verify::Verdict::Proven ? 0 : 1;
  }
  if (prop == "bound") {
    const verify::InstructionBoundReport r =
        verifier.verify_instruction_bound(pl);
    std::printf("instruction bound of @%s (len %zu): %s, max %llu%s\n",
                prog.name.c_str(), cfg.packet_len,
                verify::verdict_name(r.verdict),
                static_cast<unsigned long long>(r.max_instructions),
                r.bound_is_exact ? " (exact)" : " (upper bound)");
    return r.verdict == verify::Verdict::Proven ? 0 : 1;
  }
  std::printf("unknown property: %s\n", prop.c_str());
  return 2;
}

// --- vsd serve / vsd submit: verification-as-a-service ----------------------

// SIGTERM/SIGINT ask the daemon to drain and exit 0; only a flag is set
// here — all real teardown happens on the main thread.
volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal(int) { g_serve_stop = 1; }

int cmd_serve(const Args& a) {
  serve::ServeOptions opts;
  opts.socket_path = a.get("socket", "");
  if (opts.socket_path.empty()) {
    throw UsageError("serve requires --socket <path>");
  }
  opts.cache_dir = a.get("cache-dir", "");
  if (a.options.count("cache-dir") != 0 && opts.cache_dir.empty()) {
    throw UsageError("--cache-dir expects a directory path");
  }
  if (!opts.cache_dir.empty()) {
    std::string err;
    if (!cache::Store::validate_dir(opts.cache_dir, &err)) {
      throw UsageError("--cache-dir: " + err);
    }
  }
  opts.jobs = a.get_u64("jobs", 1);

  serve::Server server(opts);
  std::string err;
  if (!server.start(&err)) throw UsageError(err);
  std::printf("vsd serve: listening on %s (jobs %zu, cache %s)\n",
              opts.socket_path.c_str(), opts.jobs,
              opts.cache_dir.empty() ? "in-memory" : opts.cache_dir.c_str());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGTERM, serve_signal);
  std::signal(SIGINT, serve_signal);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  const serve::ServeStats st = server.stats();
  std::printf("vsd serve: drained after %llu request(s), %llu error(s)\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.errors));
  return 0;
}

int cmd_submit(const Args& a) {
  const std::string socket_path = a.get("socket", "");
  if (socket_path.empty()) {
    throw UsageError("submit requires --socket <path>");
  }
  const std::string& path = a.positional[1];
  const std::string spec_text = read_file(path);
  const size_t jobs = a.options.count("jobs") != 0
                          ? static_cast<size_t>(a.get_u64("jobs", 1))
                          : SIZE_MAX;
  const std::string request = serve::make_request(path, spec_text, jobs);
  std::string response;
  std::string err;
  if (!serve::submit_line(socket_path, request, &response, &err)) {
    std::printf("error: %s\n", err.c_str());
    return 2;
  }
  std::printf("%s\n", response.c_str());
  // Transport errors exit 2; a delivered report exits by its verdict.
  // Quoted strings escape '"', so a literal "ok":false can only come from
  // the response structure itself.
  if (response.rfind("{\"ok\":false", 0) == 0) return 2;
  return response.find("\"ok\":false") == std::string::npos ? 0 : 1;
}

int cmd_baseline(const Args& a) {
  pipeline::Pipeline pl = elements::parse_pipeline(a.positional[1]);
  verify::MonolithicConfig cfg;
  cfg.packet_len = a.get_u64("len", 64);
  cfg.time_budget_seconds = static_cast<double>(a.get_u64("budget", 60));
  verify::MonolithicVerifier verifier(cfg);
  const verify::CrashFreedomReport r = verifier.verify_crash_freedom(pl);
  const char* verdict = r.verdict == verify::Verdict::Unknown
                            ? "DNF (budget exhausted)"
                            : verify::verdict_name(r.verdict);
  std::printf("monolithic crash-freedom: %s in %.2f s (%llu paths, %llu "
              "instrs interpreted)\n",
              verdict, r.seconds,
              static_cast<unsigned long long>(
                  verifier.last_stats().paths_explored),
              static_cast<unsigned long long>(
                  verifier.last_stats().instructions_interpreted));
  for (const auto& ce : r.counterexamples) print_counterexample(ce);
  return 0;
}

}  // namespace

int dispatch(const Args& a) {
  const std::string& cmd = a.positional[0];
  if (cmd == "list") return cmd_list();
  if (cmd == "fuzz") return cmd_fuzz(a);
  if (cmd == "serve") return cmd_serve(a);
  if (a.positional.size() < 2) return usage();
  if (cmd == "check") return cmd_check(a);
  if (cmd == "submit") return cmd_submit(a);
  if (cmd == "show") return cmd_show(a);
  if (cmd == "run") return cmd_run(a);
  if (cmd == "verify") return cmd_verify(a);
  if (cmd == "reach") return cmd_reach(a);
  if (cmd == "state") return cmd_state(a);
  if (cmd == "certify") return cmd_certify(a);
  if (cmd == "baseline") return cmd_baseline(a);
  if (cmd == "paths") return cmd_paths(a);
  if (cmd == "profile") return cmd_profile(a);
  if (cmd == "asm") return cmd_asm(a);
  if (cmd == "verify-ir") return cmd_verify_ir(a);
  return usage();
}

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.positional.empty()) return usage();
  int rc = 2;
  try {
    check_flags(a);
    // Tracing sinks are global so every command gets them for free.
    // Observational only: verdicts, exit codes, and counterexample bytes
    // are byte-identical with or without these flags (tests/obs_test.cpp).
    const std::string trace_path = a.get("trace", "");
    const std::string metrics_path = a.get("metrics", "");
    if (a.options.count("trace") != 0 && trace_path.empty()) {
      throw UsageError("--trace expects an output file path");
    }
    if (a.options.count("metrics") != 0 && metrics_path.empty()) {
      throw UsageError("--metrics expects an output file path");
    }
    if (!trace_path.empty() || !metrics_path.empty()) obs::enable(true);
    rc = dispatch(a);
    if (!trace_path.empty() && !obs::write_chrome_trace(trace_path)) {
      std::printf("error: cannot write %s\n", trace_path.c_str());
      return 2;
    }
    if (!metrics_path.empty() && !obs::write_metrics(metrics_path)) {
      std::printf("error: cannot write %s\n", metrics_path.c_str());
      return 2;
    }
  } catch (const UsageError& e) {
    std::printf("error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  }
  return rc;
}
