// The app-market use case (paper §2): an operator "goes shopping" for
// packet-processing elements; the market formally certifies each candidate
// against the operator's running pipeline before it may be dropped in —
// crash freedom plus the maximum latency (instruction) increase.
#include <cstdio>
#include <string>
#include <vector>

#include "verify/certify.hpp"
#include "verify/decomposed.hpp"

using namespace vsd;

int main() {
  const std::string operator_pipeline =
      "CheckIPHeader(nochecksum) -> IPLookup(10.0.0.0/8 0) -> DecIPTTL";
  std::printf("operator pipeline: %s\n", operator_pipeline.c_str());
  std::printf("candidates are inserted after stage 0 (CheckIPHeader)\n\n");

  verify::DecomposedConfig cfg;
  cfg.packet_len = 48;
  verify::DecomposedVerifier verifier(cfg);

  const std::vector<std::string> store_shelf = {
      "NetFlow",            // well-behaved statistics app
      "Paint(3)",           // trivial annotation app
      "IPOptions",          // options processor with a loop
      "NAT",                // stateful rewriter, safe allocation
      "NetFlow(strict)",    // counter that can overflow -> must be rejected
      // UnsafeStrip crashes on runt packets in isolation, yet it is
      // CERTIFIED here: the upstream CheckIPHeader guarantees >= 20 bytes,
      // so the pull can never underflow in THIS pipeline. This is the
      // paper's compositional reasoning paying off — the same element is
      // rejected when certified against a pipeline that lets runts reach
      // it (see tab6 and the quickstart).
      "UnsafeStrip(14)",
      "NAT(192.168.1.1, 10000, 4096, buggy)",  // overflowing allocator
  };

  size_t accepted = 0;
  for (const std::string& candidate : store_shelf) {
    const verify::CertificationReport r =
        verify::certify_element(verifier, operator_pipeline, candidate, 0);
    std::printf("---------------------------------------------------------\n");
    std::printf("%s\n", r.summary.c_str());
    if (!r.crash.counterexamples.empty()) {
      const verify::Counterexample& ce = r.crash.counterexamples.front();
      std::printf("  crash witness (%s): %s\n", ir::trap_name(ce.trap),
                  ce.packet.hex(24).c_str());
      if (!ce.state_note.empty()) {
        std::printf("  note: %s\n", ce.state_note.c_str());
      }
    }
    if (r.certified) ++accepted;
  }
  std::printf("---------------------------------------------------------\n");
  std::printf("certified %zu/%zu candidates\n", accepted, store_shelf.size());
  return 0;
}
