// Stateful verification (paper §3, "Element Verification"): NAT and
// NetFlow keep mutable private state, the hard case for symbolic
// execution. This example runs a NAT+NetFlow chain on live flows, then
// shows the key/value bad-value analysis at work: the safe NAT is proven
// crash-free, the overflowing variant is refuted with a note that the
// violation needs state built by a prior packet sequence.
#include <cstdio>

#include "elements/registry.hpp"
#include "elements/stateful.hpp"
#include "net/headers.hpp"
#include "pipeline/pipeline.hpp"
#include "verify/decomposed.hpp"

using namespace vsd;

int main() {
  // --- concrete NAT behaviour --------------------------------------------
  pipeline::Pipeline pl = elements::parse_pipeline(
      "CheckIPHeader(nochecksum) -> NAT(192.168.1.1, 10000, 4096) -> NetFlow");
  std::printf("pipeline: CheckIPHeader -> NAT -> NetFlow\n\n");

  for (int flow = 0; flow < 3; ++flow) {
    net::PacketSpec spec;
    spec.ip_src = net::parse_ipv4("10.0.0." + std::to_string(10 + flow));
    spec.src_port = static_cast<uint16_t>(40000 + flow);
    spec.ip_dst = net::parse_ipv4("93.184.216.34");
    for (int i = 0; i < 2; ++i) {
      net::Packet p = net::make_packet(spec);
      p.pull_front(net::kEtherHeaderSize);
      const pipeline::PipelineResult r = pl.process(p);
      std::printf("flow %d pkt %d: src rewritten to %s:%llu (%s)\n", flow, i,
                  net::format_ipv4(static_cast<uint32_t>(p.load_be(12, 4)))
                      .c_str(),
                  static_cast<unsigned long long>(p.load_be(20, 2)),
                  r.action == pipeline::FinalAction::Delivered ? "delivered"
                                                               : "dropped");
    }
  }
  std::printf("NAT mappings held: %zu; NetFlow flows seen: %zu\n",
              pl.element(1).kv().entry_count(0),
              pl.element(2).kv().entry_count(0));

  // --- proofs over private state -----------------------------------------
  verify::DecomposedConfig cfg;
  cfg.packet_len = 48;
  verify::DecomposedVerifier verifier(cfg);

  {
    pipeline::Pipeline safe;
    safe.add("nat", elements::make_nat());
    const verify::CrashFreedomReport r = verifier.verify_crash_freedom(safe);
    std::printf("\nsafe NAT (modulo port allocation): %s in %.2f s\n",
                verify::verdict_name(r.verdict), r.seconds);
  }
  {
    pipeline::Pipeline buggy;
    elements::NatConfig nc;
    nc.buggy = true;
    buggy.add("nat", elements::make_nat(nc));
    const verify::CrashFreedomReport r = verifier.verify_crash_freedom(buggy);
    std::printf("\nbuggy NAT (no wraparound): %s\n",
                verify::verdict_name(r.verdict));
    if (!r.counterexamples.empty()) {
      const verify::Counterexample& ce = r.counterexamples.front();
      std::printf("  trap: %s\n  trigger packet: %s\n", ir::trap_name(ce.trap),
                  ce.packet.hex(24).c_str());
      if (!ce.state_note.empty()) {
        std::printf("  %s\n", ce.state_note.c_str());
      }
    }
  }
  {
    pipeline::Pipeline strict;
    elements::NetFlowConfig nf;
    nf.strict = true;
    strict.add("netflow", elements::make_netflow(nf));
    const verify::CrashFreedomReport r = verifier.verify_crash_freedom(strict);
    std::printf("\nstrict NetFlow (counter overflow assert): %s\n",
                verify::verdict_name(r.verdict));
    if (!r.counterexamples.empty() &&
        !r.counterexamples.front().state_note.empty()) {
      std::printf("  %s\n", r.counterexamples.front().state_note.c_str());
    }
  }
  return 0;
}
