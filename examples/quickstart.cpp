// Quickstart: build a pipeline from a config string, push packets through
// it, and prove a property about it — the three things this library does.
//
//   $ ./quickstart
//
// Walks through: (1) assembling a pipeline, (2) concrete forwarding,
// (3) proving crash freedom, (4) getting a counterexample packet when the
// proof fails.
#include <cstdio>

#include "elements/registry.hpp"
#include "net/headers.hpp"
#include "pipeline/pipeline.hpp"
#include "verify/decomposed.hpp"

using namespace vsd;

int main() {
  // 1. A pipeline, Click style: classify, strip the MAC header, validate
  //    the IP header, decrement TTL.
  pipeline::Pipeline pl = elements::parse_pipeline(
      "Classifier -> EthDecap -> CheckIPHeader -> DecIPTTL");
  std::printf("pipeline has %zu elements\n", pl.size());

  // 2. Concrete execution: a well-formed UDP packet flows through.
  net::PacketSpec spec;
  spec.ip_dst = net::parse_ipv4("10.0.0.2");
  spec.ttl = 9;
  net::Packet pkt = net::make_packet(spec);
  const pipeline::PipelineResult res = pl.process(pkt);
  std::printf("packet disposition: %s after %zu elements, %llu instructions\n",
              res.action == pipeline::FinalAction::Delivered ? "delivered"
              : res.action == pipeline::FinalAction::Dropped ? "dropped"
                                                             : "TRAPPED",
              res.trace.size(),
              static_cast<unsigned long long>(res.instructions));
  // EthDecap stripped the MAC header, so the IP TTL now sits at offset 8.
  std::printf("TTL after forwarding: %u (was 9)\n", pkt[8]);

  // 3. Verification: prove that NO packet — not just this one — can crash
  //    the pipeline.
  verify::DecomposedConfig cfg;
  cfg.packet_len = 64;
  verify::DecomposedVerifier verifier(cfg);
  const verify::CrashFreedomReport proof = verifier.verify_crash_freedom(pl);
  std::printf("\ncrash-freedom: %s (%.2f s, %llu suspects eliminated)\n",
              verify::verdict_name(proof.verdict), proof.seconds,
              static_cast<unsigned long long>(proof.stats.suspects_eliminated));

  // 4. Now break it: an unguarded Strip crashes on runt packets. The
  //    verifier finds the violation and hands back the packet that does it.
  pipeline::Pipeline bad =
      elements::parse_pipeline("UnsafeStrip(14) -> CheckIPHeader");
  verify::DecomposedConfig cfg2;
  cfg2.packet_len = 8;
  verify::DecomposedVerifier verifier2(cfg2);
  const verify::CrashFreedomReport broken = verifier2.verify_crash_freedom(bad);
  std::printf("\nUnsafeStrip pipeline: %s\n",
              verify::verdict_name(broken.verdict));
  if (!broken.counterexamples.empty()) {
    const verify::Counterexample& ce = broken.counterexamples.front();
    std::printf("counterexample (%s): %s\n", ir::trap_name(ce.trap),
                ce.packet.hex().c_str());
    // Replay it to confirm: this very packet crashes the pipeline.
    net::Packet replay = ce.packet;
    const pipeline::PipelineResult rr = bad.process(replay);
    std::printf("replay: %s\n",
                rr.action == pipeline::FinalAction::Trapped
                    ? "confirmed crash"
                    : "did not crash (bug!)");
  }
  return 0;
}
