// The paper's flagship scenario: the default Click IP-router pipeline,
// exercised with live traffic and then formally verified — crash freedom,
// a per-packet instruction bound with the maximizing packet, and the
// reachability property from §1 ("any packet with destination IP address X
// will never be dropped unless it is malformed").
#include <cstdio>

#include "elements/registry.hpp"
#include "net/headers.hpp"
#include "net/workload.hpp"
#include "pipeline/pipeline.hpp"
#include "verify/decomposed.hpp"
#include "verify/predicates.hpp"

using namespace vsd;

int main() {
  pipeline::Pipeline router = elements::make_ip_router_pipeline();
  std::printf("IP router pipeline (%zu elements):\n", router.size());
  for (size_t i = 0; i < router.size(); ++i) {
    std::printf("  [%zu] %s\n", i, router.element(i).name().c_str());
  }

  // --- live traffic -----------------------------------------------------
  size_t delivered = 0, dropped = 0, trapped = 0;
  for (const auto traffic :
       {net::TrafficClass::WellFormed, net::TrafficClass::WithIpOptions,
        net::TrafficClass::MalformedHeader, net::TrafficClass::RandomBytes}) {
    net::WorkloadConfig cfg;
    cfg.traffic = traffic;
    cfg.count = 500;
    cfg.seed = 11 + static_cast<uint64_t>(traffic);
    cfg.dst_pool = {net::parse_ipv4("10.1.2.3"),
                    net::parse_ipv4("192.168.9.1"),
                    net::parse_ipv4("8.8.8.8")};
    for (net::Packet& p : net::generate_workload(cfg)) {
      switch (router.process(p).action) {
        case pipeline::FinalAction::Delivered: ++delivered; break;
        case pipeline::FinalAction::Dropped: ++dropped; break;
        case pipeline::FinalAction::Trapped: ++trapped; break;
      }
    }
  }
  std::printf("\n2000 mixed packets: %zu delivered, %zu dropped, %zu trapped\n",
              delivered, dropped, trapped);

  // --- proofs -------------------------------------------------------------
  verify::DecomposedConfig cfg;
  cfg.packet_len = 64;
  verify::DecomposedVerifier verifier(cfg);

  const verify::CrashFreedomReport crash = verifier.verify_crash_freedom(router);
  std::printf("\n[1] crash freedom (all inputs, len %zu): %s in %.2f s\n",
              cfg.packet_len, verify::verdict_name(crash.verdict),
              crash.seconds);
  std::printf("    elements summarized: %llu, suspects: %llu, eliminated: %llu\n",
              static_cast<unsigned long long>(crash.stats.elements_summarized),
              static_cast<unsigned long long>(crash.stats.suspects_found),
              static_cast<unsigned long long>(crash.stats.suspects_eliminated));

  const verify::InstructionBoundReport bound =
      verifier.verify_instruction_bound(router);
  std::printf("\n[2] instruction bound: %s, max %llu instructions/packet%s\n",
              verify::verdict_name(bound.verdict),
              static_cast<unsigned long long>(bound.max_instructions),
              bound.bound_is_exact ? " (exact)" : " (upper bound)");
  if (bound.witness) {
    std::printf("    maximizing packet (%llu instrs on replay): %s\n",
                static_cast<unsigned long long>(bound.witness_instructions),
                bound.witness->hex(32).c_str());
  }

  const uint32_t routed = net::parse_ipv4("10.1.2.3");
  const verify::ReachabilityReport reach = verifier.verify_never_dropped(
      router, [&](const symbex::SymPacket& p) {
        return verify::both(
            verify::wellformed_ipv4_checksummed(p),
            verify::dst_ip_is(p, routed, net::kEtherHeaderSize));
      });
  std::printf("\n[3] 'well-formed packets to 10.1.2.3 are never dropped': %s "
              "in %.2f s\n",
              verify::verdict_name(reach.verdict), reach.seconds);

  const uint32_t unrouted = net::parse_ipv4("8.8.8.8");
  const verify::ReachabilityReport reach2 = verifier.verify_never_dropped(
      router, [&](const symbex::SymPacket& p) {
        return verify::both(
            verify::wellformed_ipv4_checksummed(p),
            verify::dst_ip_is(p, unrouted, net::kEtherHeaderSize));
      });
  std::printf("\n[4] same property for unrouted 8.8.8.8: %s",
              verify::verdict_name(reach2.verdict));
  if (!reach2.counterexamples.empty()) {
    std::printf(" — witness drop at [%s]",
                reach2.counterexamples[0].element_path.back().c_str());
  }
  std::printf("\n");
  return 0;
}
